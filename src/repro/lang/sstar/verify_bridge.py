"""Bridge from S* programs to the verification subsystem.

Converts an S(M) program into the verification statement language of
``repro.verify.hoare`` — including the parallel-assignment semantics of
``cobegin`` (simultaneous substitution) and the shift/mask semantics of
tuple field select/deposit — generates the proof obligations from the
program's ``pre``/``post``/``inv``/``assert`` annotations, and checks
them with the bounded checker.

Variable names in annotations are canonicalized to their bound storage
(register name, or ``lsN`` for local-store slots), so synonyms alias
correctly: ``mpr`` and a ``syn`` for the same register verify as one
variable, exactly as the hardware behaves.
"""

from __future__ import annotations

from repro.errors import VerificationError
from repro.lang.sstar.ast import (
    AssertStmt,
    AssignStmt,
    Cobegin,
    Cocycle,
    ConstRef,
    Dur,
    IfStmt,
    Region,
    RepeatStmt,
    Seq,
    SStarProgram,
    Test,
    VarRef,
    WhileStmt,
)
from repro.lang.sstar.codegen import (
    FieldStorage,
    RegStorage,
    ScratchStorage,
    SStarCodegen,
)
from repro.machine.machine import MicroArchitecture
from repro.verify.checker import BoundedChecker, VerificationReport
from repro.verify.expr import (
    BinOp,
    Compare,
    Const,
    Expr,
    Not,
    TRUE,
    UnOp,
    Var,
)
from repro.verify.hoare import (
    VAssert,
    VAssign,
    VIf,
    VParallel,
    VSeq,
    VStmt,
    VWhile,
    generate_vcs,
)
from repro.verify.parser import parse_assertion


class SStarVerifier:
    """Builds and checks the proof obligations of an S(M) program."""

    def __init__(self, program: SStarProgram, machine: MicroArchitecture):
        self.ast = program
        self.machine = machine
        # Reuse the code generator's resolution machinery (bindings are
        # validated as a side effect).
        self._resolver = SStarCodegen(program, machine)

    # -- names ------------------------------------------------------------
    def canonical(self, name: str, line: int = 0) -> str:
        if name in self.ast.constants:
            raise VerificationError(
                f"{name!r} is a constant, not a variable"
            )
        storage = self._resolver.storage_of(VarRef(name), line)
        if isinstance(storage, RegStorage):
            return storage.register
        if isinstance(storage, ScratchStorage):
            return f"ls{storage.slot}"
        raise VerificationError(
            f"variable {name!r} has storage unsupported in proofs"
        )

    def _canonicalize(self, expr: Expr) -> Expr:
        mapping: dict[str, Expr] = {}
        for name in expr.variables():
            if name in self.ast.constants:
                mapping[name] = Const(
                    self.ast.constants[name].value & self.machine.mask()
                )
            elif name in self.ast.variables or name in self.ast.synonyms:
                mapping[name] = Var(self.canonical(name))
            # Unknown names stay free (ghost variables like v0 in
            # "product = mpr0 * mpnd" are legitimate).
        return expr.substitute(mapping)

    def parse_annotation(self, text: str) -> Expr:
        return self._canonicalize(parse_assertion(text))

    # -- operand / statement conversion ----------------------------------------
    def _operand_expr(self, operand, line: int) -> Expr:
        if isinstance(operand, ConstRef):
            return Const(operand.value & self.machine.mask())
        if isinstance(operand, VarRef) and operand.name in self.ast.constants:
            return Const(
                self.ast.constants[operand.name].value & self.machine.mask()
            )
        storage = self._resolver.storage_of(operand, line)
        if isinstance(storage, RegStorage):
            return Var(storage.register)
        if isinstance(storage, ScratchStorage):
            return Var(f"ls{storage.slot}")
        if isinstance(storage, FieldStorage):
            mask = (1 << storage.width) - 1
            return BinOp(
                "&",
                BinOp(">>", Var(storage.register), Const(storage.position)),
                Const(mask),
            )
        raise VerificationError(f"operand {operand!r} unsupported in proofs")

    def _assign_vstmt(self, statement: AssignStmt) -> VAssign:
        line = statement.line
        operands = [self._operand_expr(o, line) for o in statement.operands]
        op = statement.op
        if op == "mov":
            rhs = operands[0]
        elif op in ("add", "sub", "and", "or", "xor"):
            symbol = {"add": "+", "sub": "-", "and": "&", "or": "|",
                      "xor": "^"}[op]
            rhs = BinOp(symbol, operands[0], operands[1])
        elif op == "not":
            rhs = UnOp("~", operands[0])
        elif op == "neg":
            rhs = UnOp("-", operands[0])
        elif op == "inc":
            rhs = BinOp("+", operands[0], Const(1))
        elif op == "dec":
            rhs = BinOp("-", operands[0], Const(1))
        elif op in ("shl", "shr"):
            symbol = "<<" if op == "shl" else ">>"
            rhs = BinOp(symbol, operands[0], operands[1])
        else:
            raise VerificationError(
                f"operation {op!r} unsupported in proofs"
            )
        dest = self._resolver.storage_of(statement.dest, line)
        if isinstance(dest, RegStorage):
            return VAssign(dest.register, rhs)
        if isinstance(dest, ScratchStorage):
            return VAssign(f"ls{dest.slot}", rhs)
        if isinstance(dest, FieldStorage):
            # Deposit: REG := (REG & ~(mask << pos)) | ((rhs & mask) << pos)
            mask = (1 << dest.width) - 1
            keep = self.machine.mask() & ~(mask << dest.position)
            deposited = BinOp(
                "|",
                BinOp("&", Var(dest.register), Const(keep)),
                BinOp("<<", BinOp("&", rhs, Const(mask)),
                      Const(dest.position)),
            )
            return VAssign(dest.register, deposited)
        raise VerificationError("assignment target unsupported in proofs")

    def _test_expr(self, test: Test) -> Expr:
        if test.flag is not None:
            raise VerificationError(
                "flag tests are unsupported in proofs; use a relational test"
            )
        left = self._operand_expr(test.left, test.line)
        right = self._operand_expr(test.right, test.line)
        return Compare(test.relop, left, right)

    def to_vstmt(self, statement) -> VStmt:
        if isinstance(statement, AssignStmt):
            return self._assign_vstmt(statement)
        if isinstance(statement, (Seq, Region)):
            return VSeq(tuple(self.to_vstmt(s) for s in statement.body))
        if isinstance(statement, Cocycle):
            return VSeq(tuple(self.to_vstmt(s) for s in statement.body))
        if isinstance(statement, Cobegin):
            assigns = []
            for child in statement.body:
                converted = self.to_vstmt(child)
                if not isinstance(converted, VAssign):
                    raise VerificationError(
                        "cobegin members must be assignments in proofs"
                    )
                assigns.append(converted)
            return VParallel(tuple(assigns))
        if isinstance(statement, Dur):
            return VSeq(
                (self.to_vstmt(statement.overlapped),
                 *(self.to_vstmt(s) for s in statement.body))
            )
        if isinstance(statement, IfStmt):
            arms = tuple(
                (self._test_expr(test), self.to_vstmt(body))
                for test, body in statement.arms
            )
            otherwise = (
                self.to_vstmt(statement.otherwise)
                if statement.otherwise is not None
                else None
            )
            return VIf(arms, otherwise)
        if isinstance(statement, WhileStmt):
            if statement.invariant is None:
                raise VerificationError(
                    f"while at line {statement.line} needs an 'inv' annotation"
                )
            return VWhile(
                self._test_expr(statement.test),
                self.parse_annotation(statement.invariant),
                self.to_vstmt(statement.body),
            )
        if isinstance(statement, RepeatStmt):
            if statement.invariant is None:
                raise VerificationError(
                    f"repeat at line {statement.line} needs an 'inv' annotation"
                )
            body = VSeq(tuple(self.to_vstmt(s) for s in statement.body))
            invariant = self.parse_annotation(statement.invariant)
            # repeat S until t  ==  S ; while not t do S
            return VSeq(
                (body, VWhile(Not(self._test_expr(statement.test)),
                              invariant, body))
            )
        if isinstance(statement, AssertStmt):
            return VAssert(self.parse_annotation(statement.text))
        raise VerificationError(
            f"statement {type(statement).__name__} unsupported in proofs"
        )

    # -- driver ------------------------------------------------------------
    def verify(self, checker: BoundedChecker | None = None) -> VerificationReport:
        """Generate and check all proof obligations of the program."""
        pre = (
            self.parse_annotation(self.ast.pre)
            if self.ast.pre is not None
            else TRUE
        )
        post = (
            self.parse_annotation(self.ast.post)
            if self.ast.post is not None
            else TRUE
        )
        statement = self.to_vstmt(self.ast.body)
        conditions = generate_vcs(pre, statement, post, f"{self.ast.name}: ")
        checker = checker or BoundedChecker(width=self.machine.word_size)
        return VerificationReport(checker.check_all(conditions))


def verify_sstar(
    program: SStarProgram,
    machine: MicroArchitecture,
    checker: BoundedChecker | None = None,
) -> VerificationReport:
    """Convenience wrapper: program → verification report."""
    return SStarVerifier(program, machine).verify(checker)
