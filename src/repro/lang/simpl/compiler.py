"""SIMPL compiler driver (survey §2.2.1).

Pipeline: parse → semantic checks (variables must be machine
registers) → code generation → legalization → composition (linear
first-come-first-served by default, matching the historical SIMPL
compiler's approach) → assembly.  No register allocation runs because
SIMPL identifies variables with machine registers.

Every stage is wrapped in an observability span (``repro.obs``); pass
a recording tracer to get the per-stage compile-time breakdown.
"""

from __future__ import annotations

from repro.asm.assembler import assemble
from repro.compose.base import Composer, compose_program
from repro.compose.linear import LinearComposer
from repro.lang.common.legalize import legalize
from repro.lang.common.restart import apply_restart_safety
from repro.lang.simpl.codegen import generate
from repro.lang.simpl.parser import parse_simpl
from repro.lang.simpl.sema import check_program
from repro.lang.yalll.compiler import CompileResult
from repro.machine.machine import MicroArchitecture
from repro.obs.tracer import NULL_TRACER
from repro.regalloc.linear_scan import AllocationResult, LinearScanAllocator


def compile_simpl(
    source: str,
    machine: MicroArchitecture,
    *,
    composer: Composer | None = None,
    restart_safe: bool = False,
    tracer=NULL_TRACER,
    cache=None,
) -> CompileResult:
    """Compile SIMPL source for a machine.

    ``restart_safe=True`` applies the §2.1.5 idempotence transform
    after legalization (macro-visible writes stage through micro
    temporaries and commit after the block's last trap point).

    ``cache`` (a :class:`repro.cache.CompileCache`) short-circuits
    recompilation of identical (source, machine, options) inputs;
    custom composers participate in the key by ``name`` only.
    """
    if cache is not None:
        return cache.get_or_compile(
            source, "simpl", machine,
            {
                "composer": getattr(composer, "name", None),
                "restart_safe": restart_safe,
            },
            lambda: compile_simpl(
                source, machine, composer=composer,
                restart_safe=restart_safe, tracer=tracer,
            ),
            tracer=tracer,
        )
    with tracer.span("compile", lang="simpl", machine=machine.name):
        with tracer.span("parse"):
            ast = parse_simpl(source)
        with tracer.span("sema"):
            names = set(machine.registers.names()) | set(machine.registers.windows)
            check_program(ast, names)
        with tracer.span("codegen") as span:
            mir = generate(ast, machine)
            span.set(ops=mir.n_ops())
        with tracer.span("legalize") as span:
            stats = legalize(mir, machine)
            span.set(ops_before=stats.ops_before, ops_after=stats.ops_after)
        hazards = apply_restart_safety(
            mir, machine, transform=restart_safe, tracer=tracer
        )
        # Legalization (and the restart transform) may introduce
        # temporaries even though the programmer bound everything;
        # allocate whatever virtuals remain.
        with tracer.span("regalloc") as span:
            if mir.virtual_regs():
                allocation = LinearScanAllocator(tracer=tracer).allocate(
                    mir, machine
                )
            else:
                allocation = AllocationResult(allocator="none")
            span.set(allocator=allocation.allocator,
                     spilled=allocation.n_spilled)
        with tracer.span("compose") as span:
            composed = compose_program(
                mir, machine, composer or LinearComposer(tracer=tracer), tracer
            )
            span.set(words=composed.n_instructions(),
                     compaction=round(composed.compaction_ratio(), 3))
        with tracer.span("assemble") as span:
            loaded = assemble(composed, machine)
            span.set(words=len(loaded))
    return CompileResult(
        mir=mir,
        composed=composed,
        loaded=loaded,
        legalize_stats=stats,
        allocation=allocation,
        restart_hazards=hazards,
    )
