"""SIMPL compiler driver (survey §2.2.1).

Pipeline: parse → semantic checks (variables must be machine
registers) → code generation → legalization → composition (linear
first-come-first-served by default, matching the historical SIMPL
compiler's approach) → assembly.  No register allocation runs because
SIMPL identifies variables with machine registers.
"""

from __future__ import annotations

from repro.asm.assembler import assemble
from repro.compose.base import Composer, compose_program
from repro.compose.linear import LinearComposer
from repro.lang.common.legalize import legalize
from repro.lang.simpl.codegen import generate
from repro.lang.simpl.parser import parse_simpl
from repro.lang.simpl.sema import check_program
from repro.lang.yalll.compiler import CompileResult
from repro.machine.machine import MicroArchitecture
from repro.regalloc.linear_scan import AllocationResult, LinearScanAllocator


def compile_simpl(
    source: str,
    machine: MicroArchitecture,
    *,
    composer: Composer | None = None,
) -> CompileResult:
    """Compile SIMPL source for a machine."""
    ast = parse_simpl(source)
    names = set(machine.registers.names()) | set(machine.registers.windows)
    check_program(ast, names)
    mir = generate(ast, machine)
    stats = legalize(mir, machine)
    # Legalization may introduce temporaries even though the programmer
    # bound everything; allocate whatever virtuals remain.
    if mir.virtual_regs():
        allocation = LinearScanAllocator().allocate(mir, machine)
    else:
        allocation = AllocationResult(allocator="none")
    composed = compose_program(mir, machine, composer or LinearComposer())
    loaded = assemble(composed, machine)
    return CompileResult(
        mir=mir,
        composed=composed,
        loaded=loaded,
        legalize_stats=stats,
        allocation=allocation,
    )
