"""SIMPL front end stages + registration (survey §2.2.1).

Pipeline: parse → semantic checks (variables must be machine
registers) → code generation → shared tail.  Allocation policy is
``"auto"``: SIMPL identifies variables with machine registers, so an
allocator runs only for the temporaries legalization or the restart
transform introduce.  The historical SIMPL compiler composed linear
first-come-first-served, which stays the default composer.
"""

from __future__ import annotations

from repro.compose.linear import LinearComposer
from repro.lang.simpl.codegen import generate
from repro.lang.simpl.parser import parse_simpl
from repro.lang.simpl.sema import check_program
from repro.machine.machine import MicroArchitecture
from repro.obs.tracer import NULL_TRACER
from repro.pipeline import CompileResult, Pipeline, Stage, standard_tail
from repro.registry import LanguageSpec, register_language


def _parse(ctx) -> None:
    ctx.ast = parse_simpl(ctx.source)


def _sema(ctx) -> None:
    registers = ctx.machine.registers
    names = set(registers.names()) | set(registers.windows)
    check_program(ctx.ast, names)


def _codegen(ctx) -> dict:
    ctx.mir = generate(ctx.ast, ctx.machine)
    return {"ops": ctx.mir.n_ops()}


PIPELINE = Pipeline(
    lang="simpl",
    stages=(
        Stage("parse", _parse),
        Stage("sema", _sema),
        Stage("codegen", _codegen),
        *standard_tail(
            regalloc="auto",
            default_composer=lambda ctx: LinearComposer(tracer=ctx.tracer),
        ),
    ),
    option_defaults={
        "composer": None,
        "restart_safe": False,
    },
)

SPEC = register_language(LanguageSpec(
    name="simpl",
    title="SIMPL - Single Identity Micro Programming Language",
    section="2.2.1",
    pipeline=PIPELINE,
    capabilities=(
        "programmer_binding",
        "single_identity",
        "parallelism_detection",
    ),
    default_composer="linear",
))


def compile_simpl(
    source: str,
    machine: MicroArchitecture,
    *,
    composer=None,
    restart_safe: bool = False,
    tracer=NULL_TRACER,
    cache=None,
    dump_after=None,
) -> CompileResult:
    """Compile SIMPL source for a machine (see :data:`PIPELINE`)."""
    return PIPELINE.run(
        source, machine, tracer=tracer, cache=cache, dump_after=dump_after,
        composer=composer, restart_safe=restart_safe,
    )
