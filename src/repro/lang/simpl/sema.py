"""SIMPL semantic analysis: the single identity principle.

SIMPL marries the single-assignment rule of dataflow languages with the
register view of variables (survey §2.2.1): the textual order of
statements distinguishes the successive values a register holds, and
precedence constraints follow:

* the statement assigning value *k* of ``x`` precedes every statement
  using that value;
* every user of value *k* precedes the statement assigning value *k+1*.

``single_identity_order`` computes exactly that partial order for a
straight-line statement list; statements unrelated in the order may
execute in parallel.  (The dependence graphs in ``repro.mir.deps``
subsume this analysis once code is generated — this module exists to
make the survey's historical algorithm inspectable on SIMPL source.)
"""

from __future__ import annotations

from repro.errors import SemanticError
from repro.lang.simpl.ast import (
    Assign,
    BinaryExpr,
    Name,
    NumberLit,
    ReadExpr,
    SimplProgram,
    Stmt,
    UnaryExpr,
    WriteStmt,
)


def _expr_names(expr) -> list[str]:
    if isinstance(expr, UnaryExpr):
        return [expr.operand.ident] if isinstance(expr.operand, Name) else []
    if isinstance(expr, BinaryExpr):
        return [
            operand.ident
            for operand in (expr.left, expr.right)
            if isinstance(operand, Name)
        ]
    if isinstance(expr, ReadExpr):
        return [expr.address.ident] if isinstance(expr.address, Name) else []
    return []


def statement_uses(statement: Stmt) -> set[str]:
    """Names a straight-line statement reads."""
    if isinstance(statement, Assign):
        return set(_expr_names(statement.expr))
    if isinstance(statement, WriteStmt):
        return {
            operand.ident
            for operand in (statement.address, statement.value)
            if isinstance(operand, Name)
        }
    raise SemanticError("single identity analysis needs straight-line code")


def statement_defs(statement: Stmt) -> set[str]:
    """Names a straight-line statement writes."""
    if isinstance(statement, Assign):
        return {statement.dest.ident}
    if isinstance(statement, WriteStmt):
        return set()
    raise SemanticError("single identity analysis needs straight-line code")


def single_identity_order(
    statements: list[Stmt],
) -> set[tuple[int, int]]:
    """Precedence pairs ``(i, j)`` meaning statement i must precede j."""
    order: set[tuple[int, int]] = set()
    for j, later in enumerate(statements):
        uses_j = statement_uses(later)
        defs_j = statement_defs(later)
        for i in range(j):
            earlier = statements[i]
            defs_i = statement_defs(earlier)
            uses_i = statement_uses(earlier)
            if defs_i & uses_j:  # value k flows i -> j
                order.add((i, j))
            if uses_i & defs_j:  # j assigns value k+1 after i used value k
                order.add((i, j))
            if defs_i & defs_j:  # successive values of the same register
                order.add((i, j))
    return order


def parallel_pairs(statements: list[Stmt]) -> list[tuple[int, int]]:
    """Statement pairs with no precedence path — SIMPL's "detected
    parallelism" for a straight-line program."""
    order = single_identity_order(statements)
    reach: dict[int, set[int]] = {i: set() for i in range(len(statements))}
    for i, j in sorted(order):
        reach[i].add(j)
    # Transitive closure (small n).
    changed = True
    while changed:
        changed = False
        for i in reach:
            extra = set()
            for j in reach[i]:
                extra |= reach[j] - reach[i]
            if extra:
                reach[i] |= extra
                changed = True
    pairs = []
    for i in range(len(statements)):
        for j in range(i + 1, len(statements)):
            if j not in reach[i] and i not in reach[j]:
                pairs.append((i, j))
    return pairs


def check_program(program: SimplProgram, register_names: set[str]) -> None:
    """Static checks: every name resolves, destinations are writable.

    ``register_names`` comes from the target machine (SIMPL variables
    are machine registers, §2.2.1).
    """
    known = {name.lower() for name in register_names}
    known |= {name.lower() for name in program.constants}
    known |= {name.lower() for name in program.equivalences}
    flags = {"uf", "z", "n", "c"}

    def check_operand(operand, line: int = 0) -> None:
        if isinstance(operand, Name) and operand.ident.lower() not in known | flags:
            raise SemanticError(
                f"unknown name {operand.ident!r} (SIMPL variables must be "
                f"machine registers, declared constants or equivalences)",
                line,
            )

    def walk(statement) -> None:
        from repro.lang.simpl.ast import (
            Block, CallStmt, CaseStmt, ForStmt, IfStmt, WhileStmt,
        )

        if isinstance(statement, Assign):
            for name in _expr_names(statement.expr):
                check_operand(Name(name), statement.line)
            check_operand(statement.dest, statement.line)
            if statement.dest.ident.lower() in {
                name.lower() for name in program.constants
            }:
                raise SemanticError(
                    f"assignment to constant {statement.dest.ident!r}",
                    statement.line,
                )
        elif isinstance(statement, WriteStmt):
            check_operand(statement.address, statement.line)
            check_operand(statement.value, statement.line)
        elif isinstance(statement, Block):
            for child in statement.body:
                walk(child)
        elif isinstance(statement, IfStmt):
            check_operand(statement.condition.left, statement.line)
            check_operand(statement.condition.right, statement.line)
            walk(statement.then_body)
            if statement.else_body is not None:
                walk(statement.else_body)
        elif isinstance(statement, WhileStmt):
            check_operand(statement.condition.left, statement.line)
            check_operand(statement.condition.right, statement.line)
            walk(statement.body)
        elif isinstance(statement, ForStmt):
            check_operand(statement.var, statement.line)
            check_operand(statement.start, statement.line)
            check_operand(statement.stop, statement.line)
            walk(statement.body)
        elif isinstance(statement, CaseStmt):
            check_operand(statement.subject, statement.line)
            for arm in statement.arms:
                walk(arm.body)
            if statement.default is not None:
                walk(statement.default)
        elif isinstance(statement, CallStmt):
            if statement.proc not in {p.name for p in program.procedures}:
                raise SemanticError(
                    f"call to unknown procedure {statement.proc!r}",
                    statement.line,
                )

    for procedure in program.procedures:
        walk(procedure.body)
    walk(program.body)
