"""SIMPL — Single Identity Micro Programming Language (§2.2.1, [18])."""

from repro.lang.simpl.ast import SimplProgram
from repro.lang.simpl.codegen import SimplCodegen, generate
from repro.lang.simpl.compiler import compile_simpl
from repro.lang.simpl.parser import parse_simpl
from repro.lang.simpl.sema import (
    check_program,
    parallel_pairs,
    single_identity_order,
)

__all__ = [
    "SimplCodegen",
    "SimplProgram",
    "check_program",
    "compile_simpl",
    "generate",
    "parallel_pairs",
    "parse_simpl",
    "single_identity_order",
]
