"""SIMPL parser.

Grammar (ASCII rendering of the survey's notation; ``comment … ;`` is
the ALGOL-style comment, ``#`` is ≠, ``^`` is the shift operator with
negative counts shifting right)::

    program   ::= 'program' IDENT ';' decl* main
    decl      ::= 'const' IDENT '=' number ';'
                | 'equiv' IDENT '=' IDENT ';'
                | 'procedure' IDENT ';' stmt
    main      ::= block
    block     ::= 'begin' stmt* 'end' ';'?
    stmt      ::= expr '->' IDENT ';'
                | 'write' '(' operand ',' operand ')' ';'
                | 'if' cond 'then' stmt ('else' stmt)?
                | 'while' cond 'do' stmt
                | 'for' IDENT '=' operand 'to' operand 'do' stmt
                | 'case' IDENT 'of' (number ':' stmt)* ('else' stmt)? 'esac' ';'?
                | 'call' IDENT ';'
                | block
    expr      ::= '~' operand
                | 'read' '(' operand ')'
                | operand (binop operand)?
    binop     ::= '+' | '-' | '&' | '|' | 'xor' | '^'
    cond      ::= operand relop operand
    relop     ::= '=' | '#' | '<' | '<=' | '>' | '>='

The one-operator-per-expression rule (§2.2.1) is enforced by the
grammar itself: there is no way to write a nested expression.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.common.lexer import Lexer, LexerSpec, TokenStream
from repro.lang.simpl.ast import (
    Assign,
    BinaryExpr,
    Block,
    CallStmt,
    CaseArm,
    CaseStmt,
    Condition,
    Expr,
    ForStmt,
    IfStmt,
    Name,
    NumberLit,
    Operand,
    ProcDecl,
    ReadExpr,
    SimplProgram,
    UnaryExpr,
    WhileStmt,
    WriteStmt,
)

_KEYWORDS = {
    "program", "begin", "end", "if", "then", "else", "while", "do",
    "for", "to", "case", "of", "esac", "const", "equiv", "procedure",
    "call", "read", "write", "xor",
}

_SPEC = LexerSpec(
    patterns=[
        (None, r"\s+"),
        ("NUMBER", r"-?(0x[0-9a-fA-F]+|0b[01]+|[0-9]+)"),
        ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
        ("ARROW", r"->"),
        ("LE", r"<="), ("GE", r">="),
        ("NEQ", r"#"), ("EQUALS", r"="),
        ("LT", r"<"), ("GT", r">"),
        ("PLUS", r"\+"), ("MINUS", r"-"),
        ("AMP", r"&"), ("PIPE", r"\|"), ("CARET", r"\^"),
        ("TILDE", r"~"),
        ("LPAREN", r"\("), ("RPAREN", r"\)"),
        ("SEMI", r";"), ("COLON", r":"), ("COMMA", r","),
    ],
    keywords=_KEYWORDS,
    keywords_case_insensitive=True,
)

_LEXER = Lexer(_SPEC)

_BINOPS = {
    "PLUS": "+", "MINUS": "-", "AMP": "&", "PIPE": "|",
    "XOR": "xor", "CARET": "^",
}
_RELOPS = {
    "EQUALS": "=", "NEQ": "#", "LT": "<", "LE": "<=", "GT": ">", "GE": ">=",
}


def _strip_comments(source: str) -> str:
    """Remove ALGOL-style ``comment … ;`` comments, keeping newlines."""
    out: list[str] = []
    index = 0
    lowered = source.lower()
    while index < len(source):
        if lowered.startswith("comment", index) and (
            index == 0 or not (source[index - 1].isalnum() or source[index - 1] == "_")
        ):
            end = source.find(";", index)
            if end < 0:
                raise ParseError("unterminated comment")
            out.append("\n" * source.count("\n", index, end + 1))
            index = end + 1
        else:
            out.append(source[index])
            index += 1
    return "".join(out)


def parse_simpl(source: str) -> SimplProgram:
    """Parse SIMPL source text."""
    tokens = _LEXER.tokenize(_strip_comments(source))
    tokens.expect("PROGRAM")
    name = tokens.expect("IDENT").value
    tokens.expect("SEMI")
    program = SimplProgram(name)
    while True:
        if tokens.accept("CONST"):
            const_name = tokens.expect("IDENT").value
            tokens.expect("EQUALS")
            value = int(tokens.expect("NUMBER").value, 0)
            tokens.expect("SEMI")
            program.constants[const_name] = value
        elif tokens.accept("EQUIV"):
            alias = tokens.expect("IDENT").value
            tokens.expect("EQUALS")
            target = tokens.expect("IDENT").value
            tokens.expect("SEMI")
            program.equivalences[alias] = target
        elif tokens.accept("PROCEDURE"):
            proc_name = tokens.expect("IDENT").value
            tokens.expect("SEMI")
            program.procedures.append(ProcDecl(proc_name, _statement(tokens)))
        else:
            break
    program.body = _block(tokens)
    return program


def _block(tokens: TokenStream) -> Block:
    tokens.expect("BEGIN")
    block = Block()
    while not tokens.at("END"):
        block.body.append(_statement(tokens))
    tokens.expect("END")
    tokens.accept("SEMI")
    return block


def _operand(tokens: TokenStream) -> Operand:
    if tokens.at("NUMBER"):
        return NumberLit(int(tokens.advance().value, 0))
    return Name(tokens.expect("IDENT").value)


def _condition(tokens: TokenStream) -> Condition:
    line = tokens.current.line
    left = _operand(tokens)
    relop_token = tokens.expect(*_RELOPS)
    right = _operand(tokens)
    return Condition(left, _RELOPS[relop_token.type], right, line)


def _statement(tokens: TokenStream):
    token = tokens.current
    if token.type == "BEGIN":
        return _block(tokens)
    if tokens.accept("IF"):
        condition = _condition(tokens)
        tokens.expect("THEN")
        then_body = _statement(tokens)
        else_body = _statement(tokens) if tokens.accept("ELSE") else None
        return IfStmt(condition, then_body, else_body, token.line)
    if tokens.accept("WHILE"):
        condition = _condition(tokens)
        tokens.expect("DO")
        return WhileStmt(condition, _statement(tokens), token.line)
    if tokens.accept("FOR"):
        var = Name(tokens.expect("IDENT").value)
        tokens.expect("EQUALS")
        start = _operand(tokens)
        tokens.expect("TO")
        stop = _operand(tokens)
        tokens.expect("DO")
        return ForStmt(var, start, stop, _statement(tokens), token.line)
    if tokens.accept("CASE"):
        subject = Name(tokens.expect("IDENT").value)
        tokens.expect("OF")
        statement = CaseStmt(subject, line=token.line)
        while tokens.at("NUMBER"):
            value = int(tokens.advance().value, 0)
            tokens.expect("COLON")
            statement.arms.append(CaseArm(value, _statement(tokens)))
        if tokens.accept("ELSE"):
            statement.default = _statement(tokens)
        tokens.expect("ESAC")
        tokens.accept("SEMI")
        return statement
    if tokens.accept("CALL"):
        name = tokens.expect("IDENT").value
        tokens.expect("SEMI")
        return CallStmt(name, token.line)
    if tokens.accept("WRITE"):
        tokens.expect("LPAREN")
        address = _operand(tokens)
        tokens.expect("COMMA")
        value = _operand(tokens)
        tokens.expect("RPAREN")
        tokens.expect("SEMI")
        return WriteStmt(address, value, token.line)
    # Assignment: expr -> dest ;
    expr = _expression(tokens)
    tokens.expect("ARROW")
    dest = Name(tokens.expect("IDENT").value)
    tokens.expect("SEMI")
    return Assign(expr, dest, token.line)


def _expression(tokens: TokenStream) -> Expr:
    if tokens.accept("TILDE"):
        return UnaryExpr("~", _operand(tokens))
    if tokens.accept("READ"):
        tokens.expect("LPAREN")
        address = _operand(tokens)
        tokens.expect("RPAREN")
        return ReadExpr(address)
    left = _operand(tokens)
    if tokens.current.type in _BINOPS:
        op_token = tokens.advance()
        right = _operand(tokens)
        return BinaryExpr(_BINOPS[op_token.type], left, right)
    return UnaryExpr("", left)
