"""SIMPL abstract syntax (survey §2.2.1, Ramamoorthy & Tsuchiya [18]).

SIMPL statements assign single-operator expressions to registers
(``R1 & M3 -> ACC;``); variables *are* machine registers, optionally
renamed through equivalence statements.  Control structure is
ALGOL-like (begin/end, if, while, for, case) without gotos.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Name:
    """A register or constant reference."""

    ident: str


@dataclass(frozen=True)
class NumberLit:
    value: int


Operand = Name | NumberLit


@dataclass(frozen=True)
class UnaryExpr:
    """``~A`` (negation) or a bare operand."""

    op: str  # "~" or "" for a plain operand
    operand: Operand


@dataclass(frozen=True)
class BinaryExpr:
    """``A op B`` — SIMPL expressions contain exactly one operator."""

    op: str  # + - & | xor ^
    left: Operand
    right: Operand


@dataclass(frozen=True)
class ReadExpr:
    """``read(A)`` — explicit main-memory fetch."""

    address: Operand


Expr = UnaryExpr | BinaryExpr | ReadExpr


@dataclass(frozen=True)
class Assign:
    """``expr -> dest;`` — the single SIMPL computation form."""

    expr: Expr
    dest: Name
    line: int = 0


@dataclass(frozen=True)
class WriteStmt:
    """``write(addr, value);`` — explicit main-memory store."""

    address: Operand
    value: Operand
    line: int = 0


@dataclass(frozen=True)
class Condition:
    """``A relop B`` over registers, constants and flags (UF)."""

    left: Operand
    relop: str  # = # < <= > >=
    right: Operand
    line: int = 0


@dataclass
class Block:
    body: list["Stmt"] = field(default_factory=list)


@dataclass
class IfStmt:
    condition: Condition
    then_body: "Stmt"
    else_body: "Stmt | None" = None
    line: int = 0


@dataclass
class WhileStmt:
    condition: Condition
    body: "Stmt" = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class ForStmt:
    """``for R = a to b do S`` (ascending, inclusive)."""

    var: Name
    start: Operand
    stop: Operand
    body: "Stmt" = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class CaseArm:
    value: int
    body: "Stmt" = None  # type: ignore[assignment]


@dataclass
class CaseStmt:
    """``case R of 0: S0; 1: S1; else Sd esac`` — multiway branch."""

    subject: Name
    arms: list[CaseArm] = field(default_factory=list)
    default: "Stmt | None" = None
    line: int = 0


@dataclass(frozen=True)
class CallStmt:
    proc: str
    line: int = 0


Stmt = Assign | WriteStmt | Block | IfStmt | WhileStmt | ForStmt | CaseStmt | CallStmt


@dataclass
class ProcDecl:
    name: str
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class SimplProgram:
    """A parsed SIMPL program."""

    name: str
    constants: dict[str, int] = field(default_factory=dict)
    equivalences: dict[str, str] = field(default_factory=dict)
    procedures: list[ProcDecl] = field(default_factory=list)
    body: Block = field(default_factory=Block)
