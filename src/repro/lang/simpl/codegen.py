"""SIMPL code generation: AST → micro-IR.

Variables map straight to machine registers (resolving equivalence
aliases); declared constants go to the constant ROM; the ``^`` shift
operator turns into ``shl``/``shr`` with the absolute count; the UF
condition reads the shifter's underflow flag (survey §2.2.1's
multiplication example relies on all three).
"""

from __future__ import annotations

from repro.errors import SemanticError
from repro.lang.simpl.ast import (
    Assign,
    BinaryExpr,
    Block,
    CallStmt,
    CaseStmt,
    Condition,
    ForStmt,
    IfStmt,
    Name,
    NumberLit,
    Operand,
    ReadExpr,
    SimplProgram,
    UnaryExpr,
    WhileStmt,
    WriteStmt,
)
from repro.machine.machine import MicroArchitecture
from repro.mir.block import Branch, Jump, MaskCase, Multiway
from repro.mir.operands import Imm, Reg, preg
from repro.mir.ops import mop
from repro.mir.program import MicroProgram, ProgramBuilder

_BINOP_TO_MIR = {"+": "add", "-": "sub", "&": "and", "|": "or", "xor": "xor"}

_RELOP_TO_COND = {"=": "Z", "#": "NZ", "<": "N", ">=": "NN"}


class SimplCodegen:
    """Generates micro-IR from a checked SIMPL program."""

    def __init__(self, program: SimplProgram, machine: MicroArchitecture):
        self.ast = program
        self.machine = machine
        self.builder = ProgramBuilder(program.name, machine)
        self._machine_regs = {
            name.lower(): name for name in machine.registers.names()
        }
        for window in machine.registers.windows:
            self._machine_regs[window.lower()] = window
        self._flags = {flag.lower() for flag in machine.flags}

    # -- name resolution ---------------------------------------------------
    def resolve(self, operand: Operand, line: int = 0) -> Reg:
        if isinstance(operand, NumberLit):
            return self._constant(operand.value, line)
        ident = operand.ident
        seen = set()
        while ident in self.ast.equivalences:
            if ident in seen:
                raise SemanticError(f"circular equivalence via {ident!r}", line)
            seen.add(ident)
            ident = self.ast.equivalences[ident]
        if ident in self.ast.constants:
            return self._constant(self.ast.constants[ident], line)
        resolved = self._machine_regs.get(ident.lower())
        if resolved is None:
            raise SemanticError(
                f"{ident!r} is not a register of {self.machine.name}", line
            )
        return preg(resolved)

    def _constant(self, value: int, line: int) -> Reg:
        resolved = self.builder.constant(value)
        if isinstance(resolved, Reg):
            return resolved
        raise SemanticError(
            f"constant {value:#x} exceeds {self.machine.name}'s constant "
            f"store; SIMPL has no synthesis path for wide literals",
            line,
        )

    # -- driver ------------------------------------------------------------
    def generate(self) -> MicroProgram:
        builder = self.builder
        builder.start_block("main")
        self._statement(self.ast.body)
        if not builder.current.terminated:
            builder.exit()
        for procedure in self.ast.procedures:
            builder.start_block(f"proc_{procedure.name}")
            builder.declare_procedure(procedure.name, f"proc_{procedure.name}")
            self._statement(procedure.body)
            if not builder.current.terminated:
                builder.ret()
        return builder.finish()

    # -- statements ------------------------------------------------------------
    def _statement(self, statement) -> None:
        builder = self.builder
        if isinstance(statement, Block):
            for child in statement.body:
                self._statement(child)
        elif isinstance(statement, Assign):
            self._assign(statement)
        elif isinstance(statement, WriteStmt):
            mar, mbr = preg("MAR"), preg("MBR")
            builder.emit(mop("mov", mar, self.resolve(statement.address, statement.line)))
            builder.emit(mop("mov", mbr, self.resolve(statement.value, statement.line)))
            builder.emit(mop("write", None, mar, mbr, line=statement.line))
        elif isinstance(statement, IfStmt):
            then_label = builder.fresh_label("then")
            else_label = builder.fresh_label("else")
            done_label = builder.fresh_label("fi")
            self._branch(statement.condition, then_label,
                         else_label if statement.else_body else done_label)
            builder.start_block(then_label)
            self._statement(statement.then_body)
            if not builder.current.terminated:
                builder.terminate(Jump(done_label))
            if statement.else_body is not None:
                builder.start_block(else_label)
                self._statement(statement.else_body)
            builder.start_block(done_label)
        elif isinstance(statement, WhileStmt):
            head = builder.fresh_label("wh")
            body = builder.fresh_label("do")
            done = builder.fresh_label("od")
            builder.terminate(Jump(head))
            builder.start_block(head)
            self._branch(statement.condition, body, done)
            builder.start_block(body)
            self._statement(statement.body)
            if not builder.current.terminated:
                builder.terminate(Jump(head))
            builder.start_block(done)
        elif isinstance(statement, ForStmt):
            var = self.resolve(statement.var, statement.line)
            builder.emit(mop("mov", var, self.resolve(statement.start, statement.line)))
            head = builder.fresh_label("for")
            body = builder.fresh_label("do")
            done = builder.fresh_label("od")
            builder.terminate(Jump(head))
            builder.start_block(head)
            stop = self.resolve(statement.stop, statement.line)
            builder.emit(mop("cmp", None, stop, var, line=statement.line))
            # stop - var < 0  <=>  var > stop  => done
            builder.terminate(Branch("N", done, body))
            builder.start_block(body)
            self._statement(statement.body)
            if not builder.current.terminated:
                builder.emit(mop("inc", var, var, line=statement.line))
                builder.terminate(Jump(head))
            builder.start_block(done)
        elif isinstance(statement, CaseStmt):
            subject = self.resolve(statement.subject, statement.line)
            done = builder.fresh_label("esac")
            arm_labels = [builder.fresh_label("arm") for _ in statement.arms]
            default = builder.fresh_label("dflt") if statement.default else done
            width = self.machine.word_size
            cases = tuple(
                MaskCase(format(arm.value, f"0{width}b"), label)
                for arm, label in zip(statement.arms, arm_labels)
            )
            builder.terminate(Multiway(subject, cases, default))
            for arm, label in zip(statement.arms, arm_labels):
                builder.start_block(label)
                self._statement(arm.body)
                if not builder.current.terminated:
                    builder.terminate(Jump(done))
            if statement.default is not None:
                builder.start_block(default)
                self._statement(statement.default)
            builder.start_block(done)
        elif isinstance(statement, CallStmt):
            builder.call(statement.proc)
        else:  # pragma: no cover
            raise SemanticError(f"unknown statement {statement!r}")

    # -- expressions ---------------------------------------------------------
    def _assign(self, statement: Assign) -> None:
        builder = self.builder
        dest = self.resolve(statement.dest, statement.line)
        expr = statement.expr
        if isinstance(expr, UnaryExpr):
            source = self.resolve(expr.operand, statement.line)
            op = "not" if expr.op == "~" else "mov"
            builder.emit(mop(op, dest, source, line=statement.line))
        elif isinstance(expr, ReadExpr):
            mar, mbr = preg("MAR"), preg("MBR")
            builder.emit(mop("mov", mar, self.resolve(expr.address, statement.line)))
            builder.emit(mop("read", mbr, mar, line=statement.line))
            if dest != mbr:
                builder.emit(mop("mov", dest, mbr, line=statement.line))
        elif isinstance(expr, BinaryExpr):
            if expr.op == "^":
                if not isinstance(expr.right, NumberLit):
                    raise SemanticError(
                        "shift count must be a literal", statement.line
                    )
                count = expr.right.value
                op = "shl" if count >= 0 else "shr"
                builder.emit(
                    mop(op, dest, self.resolve(expr.left, statement.line),
                        Imm(abs(count)), line=statement.line)
                )
                return
            mir_op = _BINOP_TO_MIR[expr.op]
            builder.emit(
                mop(
                    mir_op,
                    dest,
                    self.resolve(expr.left, statement.line),
                    self.resolve(expr.right, statement.line),
                    line=statement.line,
                )
            )
        else:  # pragma: no cover
            raise SemanticError(f"unknown expression {expr!r}", statement.line)

    # -- conditions ---------------------------------------------------------
    def _branch(self, condition: Condition, true_label: str, false_label: str) -> None:
        builder = self.builder
        flag = self._flag_condition(condition)
        if flag is not None:
            builder.terminate(Branch(flag, true_label, false_label))
            return
        left = self.resolve(condition.left, condition.line)
        right = self.resolve(condition.right, condition.line)
        builder.emit(mop("cmp", None, left, right, line=condition.line))
        relop = condition.relop
        if relop in _RELOP_TO_COND:
            builder.terminate(Branch(_RELOP_TO_COND[relop], true_label, false_label))
        elif relop == "<=":
            middle = builder.fresh_label("le")
            builder.terminate(Branch("Z", true_label, middle))
            builder.start_block(middle)
            builder.terminate(Branch("N", true_label, false_label))
        elif relop == ">":
            middle = builder.fresh_label("gt")
            builder.terminate(Branch("Z", false_label, middle))
            builder.start_block(middle)
            builder.terminate(Branch("NN", true_label, false_label))
        else:  # pragma: no cover
            raise SemanticError(f"unknown relop {relop!r}", condition.line)

    def _flag_condition(self, condition: Condition) -> str | None:
        """``UF = 1`` style conditions over hardware flags."""
        if not isinstance(condition.left, Name):
            return None
        flag = condition.left.ident.upper()
        if flag.lower() not in self._flags:
            return None
        if not isinstance(condition.right, NumberLit) or condition.right.value not in (0, 1):
            raise SemanticError(
                f"flag {flag} can only be compared with 0 or 1", condition.line
            )
        want_set = condition.right.value == 1
        if condition.relop == "#":
            want_set = not want_set
        elif condition.relop != "=":
            raise SemanticError(
                f"flag {flag} only supports = and #", condition.line
            )
        return flag if want_set else f"N{flag}"


def generate(ast: SimplProgram, machine: MicroArchitecture) -> MicroProgram:
    """Convenience wrapper: checked AST → micro-IR."""
    return SimplCodegen(ast, machine).generate()
