"""MPL parser — SIMPL's grammar plus virtuals and arrays.

::

    program sum64;
    virtual ACCV = R1 : R2;
    virtual STEP = R3 : R4;
    array TBL[8];
    const K = 0x10;
    begin
        comment 32-bit accumulation on a 16-bit machine;
        ACCV + STEP -> ACCV;
        TBL[R5] -> R6;
        R6 -> TBL[0];
        while R5 # 0 do
        begin
            R5 - ONE -> R5;
        end;
    end
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.common.lexer import Lexer, LexerSpec, TokenStream
from repro.lang.mpl.ast import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinaryExpr,
    Block,
    Condition,
    MplProgram,
    Name,
    NumberLit,
    Operand,
    UnaryExpr,
    VirtualDecl,
    WhileStmt,
    IfStmt,
)

_KEYWORDS = {
    "program", "begin", "end", "if", "then", "else", "while", "do",
    "const", "virtual", "array", "xor",
}

_SPEC = LexerSpec(
    patterns=[
        (None, r"\s+"),
        ("NUMBER", r"-?(0x[0-9a-fA-F]+|0b[01]+|[0-9]+)"),
        ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
        ("ARROW", r"->"),
        ("LE", r"<="), ("GE", r">="),
        ("NEQ", r"#"), ("EQUALS", r"="),
        ("LT", r"<"), ("GT", r">"),
        ("PLUS", r"\+"), ("MINUS", r"-"),
        ("AMP", r"&"), ("PIPE", r"\|"), ("CARET", r"\^"),
        ("TILDE", r"~"),
        ("LBRACK", r"\["), ("RBRACK", r"\]"),
        ("SEMI", r";"), ("COLON", r":"),
    ],
    keywords=_KEYWORDS,
    keywords_case_insensitive=True,
)

_LEXER = Lexer(_SPEC)

_BINOPS = {"PLUS": "+", "MINUS": "-", "AMP": "&", "PIPE": "|",
           "XOR": "xor", "CARET": "^"}
_RELOPS = {"EQUALS": "=", "NEQ": "#", "LT": "<", "LE": "<=",
           "GT": ">", "GE": ">="}


def _strip_comments(source: str) -> str:
    out: list[str] = []
    index = 0
    lowered = source.lower()
    while index < len(source):
        if lowered.startswith("comment", index) and (
            index == 0
            or not (source[index - 1].isalnum() or source[index - 1] == "_")
        ):
            end = source.find(";", index)
            if end < 0:
                raise ParseError("unterminated comment")
            out.append("\n" * source.count("\n", index, end + 1))
            index = end + 1
        else:
            out.append(source[index])
            index += 1
    return "".join(out)


def parse_mpl(source: str) -> MplProgram:
    """Parse MPL source text."""
    tokens = _LEXER.tokenize(_strip_comments(source))
    tokens.expect("PROGRAM")
    program = MplProgram(tokens.expect("IDENT").value)
    tokens.expect("SEMI")
    while True:
        token = tokens.current
        if tokens.accept("CONST"):
            name = tokens.expect("IDENT").value
            tokens.expect("EQUALS")
            program.constants[name] = int(tokens.expect("NUMBER").value, 0)
            tokens.expect("SEMI")
        elif tokens.accept("VIRTUAL"):
            name = tokens.expect("IDENT").value
            tokens.expect("EQUALS")
            high = tokens.expect("IDENT").value
            tokens.expect("COLON")
            low = tokens.expect("IDENT").value
            tokens.expect("SEMI")
            if name in program.virtuals:
                raise ParseError(f"duplicate virtual {name!r}", token.line)
            program.virtuals[name] = VirtualDecl(name, high, low, token.line)
        elif tokens.accept("ARRAY"):
            name = tokens.expect("IDENT").value
            tokens.expect("LBRACK")
            size = int(tokens.expect("NUMBER").value, 0)
            tokens.expect("RBRACK")
            tokens.expect("SEMI")
            if name in program.arrays:
                raise ParseError(f"duplicate array {name!r}", token.line)
            program.arrays[name] = ArrayDecl(name, size, token.line)
        else:
            break
    program.body = _block(tokens)
    return program


def _block(tokens: TokenStream) -> Block:
    tokens.expect("BEGIN")
    block = Block()
    while not tokens.at("END"):
        block.body.append(_statement(tokens))
    tokens.expect("END")
    tokens.accept("SEMI")
    return block


def _operand(tokens: TokenStream) -> Operand:
    if tokens.at("NUMBER"):
        return NumberLit(int(tokens.advance().value, 0))
    name = tokens.expect("IDENT").value
    if tokens.accept("LBRACK"):
        index = _operand(tokens)
        tokens.expect("RBRACK")
        return ArrayRef(name, index)
    return Name(name)


def _condition(tokens: TokenStream) -> Condition:
    line = tokens.current.line
    left = _operand(tokens)
    relop = tokens.expect(*_RELOPS)
    right = _operand(tokens)
    return Condition(left, _RELOPS[relop.type], right, line)


def _statement(tokens: TokenStream):
    token = tokens.current
    if token.type == "BEGIN":
        return _block(tokens)
    if tokens.accept("IF"):
        condition = _condition(tokens)
        tokens.expect("THEN")
        then_body = _statement(tokens)
        else_body = _statement(tokens) if tokens.accept("ELSE") else None
        return IfStmt(condition, then_body, else_body, token.line)
    if tokens.accept("WHILE"):
        condition = _condition(tokens)
        tokens.expect("DO")
        return WhileStmt(condition, _statement(tokens), token.line)
    expr = _expression(tokens)
    tokens.expect("ARROW")
    dest = _operand(tokens)
    tokens.expect("SEMI")
    return Assign(expr, dest, token.line)


def _expression(tokens: TokenStream):
    if tokens.accept("TILDE"):
        return UnaryExpr("~", _operand(tokens))
    left = _operand(tokens)
    if tokens.current.type in _BINOPS:
        op = _BINOPS[tokens.advance().type]
        right = _operand(tokens)
        return BinaryExpr(op, left, right)
    return UnaryExpr("", left)
