"""MPL — the earliest high level microprogramming language
(§2.2.5, Eckhouse [10]): SIMPL-like structure plus one-dimensional
arrays and virtual registers built by concatenating physical ones."""

from repro.lang.mpl.ast import MplProgram
from repro.lang.mpl.codegen import MplCodegen, generate
from repro.lang.mpl.compiler import compile_mpl
from repro.lang.mpl.parser import parse_mpl

__all__ = [
    "MplCodegen",
    "MplProgram",
    "compile_mpl",
    "generate",
    "parse_mpl",
]
