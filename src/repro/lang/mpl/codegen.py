"""MPL code generation: AST → micro-IR.

The distinctive lowerings (survey §2.2.5):

* **virtual registers** — a virtual ``D = HI : LO`` compiles to
  carry-chained multi-precision sequences: ``V + W`` becomes
  ``add lo`` then ``adc hi`` (the add-with-carry micro-operation the
  survey-era vertical machines provided for exactly this purpose);
  subtraction chains the borrow through ``adc`` with a complemented
  high half; logical operations act per half;
* **arrays** — one-dimensional main-memory regions addressed by
  constant or register index through MAR/MBR.

Scalar statements follow SIMPL's registers-as-variables model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticError
from repro.lang.mpl.ast import (
    ArrayRef,
    Assign,
    BinaryExpr,
    Block,
    Condition,
    IfStmt,
    MplProgram,
    Name,
    NumberLit,
    Operand,
    UnaryExpr,
    WhileStmt,
)
from repro.machine.machine import MicroArchitecture
from repro.mir.block import Branch, Jump
from repro.mir.operands import Imm, Reg, preg
from repro.mir.ops import mop
from repro.mir.program import MicroProgram, ProgramBuilder

_RELOP_TO_COND = {"=": "Z", "#": "NZ", "<": "N", ">=": "NN"}
_SCALAR_BINOPS = {"+": "add", "-": "sub", "&": "and", "|": "or", "xor": "xor"}
_HALF_BINOPS = {"&": "and", "|": "or", "xor": "xor"}


@dataclass(frozen=True)
class _Virtual:
    """A resolved virtual register: high and low physical halves."""

    high: Reg
    low: Reg


@dataclass(frozen=True)
class _Element:
    """A resolved array element: base address plus index operand."""

    base: int
    index: object  # Reg | int


class MplCodegen:
    """Generates micro-IR from a parsed MPL program."""

    def __init__(
        self,
        program: MplProgram,
        machine: MicroArchitecture,
        data_base: int = 0x6800,
    ):
        self.ast = program
        self.machine = machine
        self.builder = ProgramBuilder(program.name, machine)
        self._machine_regs = {
            name.lower(): name for name in machine.registers.names()
        }
        self.array_bases: dict[str, int] = {}
        cursor = data_base
        for decl in program.arrays.values():
            self.array_bases[decl.name] = cursor
            cursor += decl.size
        self._check_virtuals()

    def _check_virtuals(self) -> None:
        for decl in self.ast.virtuals.values():
            for half in (decl.high, decl.low):
                if half.lower() not in self._machine_regs:
                    raise SemanticError(
                        f"virtual {decl.name!r}: {half!r} is not a register "
                        f"of {self.machine.name}",
                        decl.line,
                    )

    # -- resolution ---------------------------------------------------------
    def resolve(self, operand: Operand, line: int):
        """Operand → Reg | _Virtual | _Element | int (constant)."""
        if isinstance(operand, NumberLit):
            return operand.value
        if isinstance(operand, ArrayRef):
            decl = self.ast.arrays.get(operand.array)
            if decl is None:
                raise SemanticError(f"undeclared array {operand.array!r}", line)
            index = self.resolve(operand.index, line)
            if isinstance(index, int) and not 0 <= index < decl.size:
                raise SemanticError(
                    f"index {index} out of bounds for {operand.array!r}", line
                )
            if isinstance(index, (_Virtual, _Element)):
                raise SemanticError("array index must be scalar", line)
            return _Element(self.array_bases[operand.array], index)
        name = operand.ident
        if name in self.ast.virtuals:
            decl = self.ast.virtuals[name]
            return _Virtual(
                preg(self._machine_regs[decl.high.lower()]),
                preg(self._machine_regs[decl.low.lower()]),
            )
        if name in self.ast.constants:
            return self.ast.constants[name]
        register = self._machine_regs.get(name.lower())
        if register is None:
            raise SemanticError(
                f"{name!r} is not a register, virtual, array or constant "
                f"of this MPL program",
                line,
            )
        return preg(register)

    # -- helpers ------------------------------------------------------------
    def _zero(self) -> Reg:
        for name in ("R0", "ZERO"):
            if name in self.machine.registers:
                return preg(name)
        raise SemanticError("machine has no zero register")

    def _const_reg(self, value: int, line: int) -> Reg:
        resolved = self.builder.constant(value & self.machine.mask())
        if isinstance(resolved, Reg):
            return resolved
        temp = self.builder.fresh_vreg("k")
        self.builder.emit(mop("movi", temp, Imm(value & self.machine.mask()),
                              line=line))
        return temp

    def _scalar_value(self, resolved, line: int) -> Reg:
        """Materialize a scalar operand into a register."""
        if isinstance(resolved, Reg):
            return resolved
        if isinstance(resolved, int):
            return self._const_reg(resolved, line)
        if isinstance(resolved, _Element):
            return self._load_element(resolved, line)
        raise SemanticError(
            "a 32-bit virtual cannot appear in a scalar context", line
        )

    def _address_of(self, element: _Element, line: int) -> Reg:
        if isinstance(element.index, int):
            return self._const_reg(element.base + element.index, line)
        base = self._const_reg(element.base, line)
        address = self.builder.fresh_vreg("a")
        self.builder.emit(mop("add", address, base, element.index, line=line))
        return address

    def _load_element(self, element: _Element, line: int) -> Reg:
        mar, mbr = preg("MAR"), preg("MBR")
        self.builder.emit(mop("mov", mar, self._address_of(element, line),
                              line=line))
        self.builder.emit(mop("read", mbr, mar, line=line))
        temp = self.builder.fresh_vreg("e")
        self.builder.emit(mop("mov", temp, mbr, line=line))
        return temp

    def _store_element(self, element: _Element, value: Reg, line: int) -> None:
        mar, mbr = preg("MAR"), preg("MBR")
        self.builder.emit(mop("mov", mar, self._address_of(element, line),
                              line=line))
        self.builder.emit(mop("mov", mbr, value, line=line))
        self.builder.emit(mop("write", None, mar, mbr, line=line))

    def _virtual_halves(self, resolved, line: int) -> tuple[Reg, Reg]:
        """(high, low) register pair for a virtual-context operand."""
        if isinstance(resolved, _Virtual):
            return resolved.high, resolved.low
        if isinstance(resolved, Reg):
            return self._zero(), resolved  # zero-extended scalar
        if isinstance(resolved, int):
            low = self._const_reg(resolved & self.machine.mask(), line)
            high = self._const_reg(
                (resolved >> self.machine.word_size) & self.machine.mask(),
                line,
            )
            return high, low
        raise SemanticError(
            "array elements cannot appear in 32-bit expressions", line
        )

    # -- driver ------------------------------------------------------------
    def generate(self) -> MicroProgram:
        builder = self.builder
        builder.start_block("main")
        self._statement(self.ast.body)
        if builder.has_open_block:
            builder.exit()
        return builder.finish()

    # -- statements ------------------------------------------------------------
    def _statement(self, statement) -> None:
        builder = self.builder
        if isinstance(statement, Block):
            for child in statement.body:
                self._statement(child)
        elif isinstance(statement, Assign):
            self._assign(statement)
        elif isinstance(statement, IfStmt):
            then_label = builder.fresh_label("then")
            other = builder.fresh_label("else")
            done = builder.fresh_label("fi")
            self._branch(statement.condition, then_label,
                         other if statement.else_body else done)
            builder.start_block(then_label)
            self._statement(statement.then_body)
            if builder.has_open_block:
                builder.terminate(Jump(done))
            if statement.else_body is not None:
                builder.start_block(other)
                self._statement(statement.else_body)
            builder.start_block(done)
        elif isinstance(statement, WhileStmt):
            head = builder.fresh_label("wh")
            body = builder.fresh_label("do")
            done = builder.fresh_label("od")
            builder.terminate(Jump(head))
            builder.start_block(head)
            self._branch(statement.condition, body, done)
            builder.start_block(body)
            self._statement(statement.body)
            if builder.has_open_block:
                builder.terminate(Jump(head))
            builder.start_block(done)
        else:  # pragma: no cover
            raise SemanticError(f"unknown statement {statement!r}")

    # -- assignment ---------------------------------------------------------
    def _assign(self, statement: Assign) -> None:
        line = statement.line
        dest = self.resolve(statement.dest, line)
        if isinstance(dest, _Virtual):
            self._assign_virtual(dest, statement.expr, line)
            return
        if isinstance(dest, _Element):
            value = self._scalar_expr(statement.expr, line)
            self._store_element(dest, value, line)
            return
        if isinstance(dest, int):
            raise SemanticError("assignment to a constant", line)
        assert isinstance(dest, Reg)
        value = self._scalar_expr(statement.expr, line, into=dest)
        if value != dest:
            self.builder.emit(mop("mov", dest, value, line=line))

    def _scalar_expr(self, expr, line: int, into: Reg | None = None) -> Reg:
        """Evaluate a scalar expression; writes ``into`` when possible."""
        builder = self.builder
        if isinstance(expr, UnaryExpr):
            source = self._scalar_value(self.resolve(expr.operand, line), line)
            if expr.op == "":
                return source
            dest = into or builder.fresh_vreg("t")
            builder.emit(mop("not", dest, source, line=line))
            return dest
        assert isinstance(expr, BinaryExpr)
        if expr.op == "^":
            right = self.resolve(expr.right, line)
            if not isinstance(right, int):
                raise SemanticError("shift count must be a constant", line)
            source = self._scalar_value(self.resolve(expr.left, line), line)
            dest = into or builder.fresh_vreg("t")
            op = "shl" if right >= 0 else "shr"
            builder.emit(mop(op, dest, source, Imm(abs(right)), line=line))
            return dest
        left = self._scalar_value(self.resolve(expr.left, line), line)
        right = self._scalar_value(self.resolve(expr.right, line), line)
        dest = into or builder.fresh_vreg("t")
        builder.emit(mop(_SCALAR_BINOPS[expr.op], dest, left, right, line=line))
        return dest

    def _assign_virtual(self, dest: _Virtual, expr, line: int) -> None:
        """Multi-precision assignment into a register pair."""
        builder = self.builder
        if isinstance(expr, UnaryExpr):
            high, low = self._virtual_halves(
                self.resolve(expr.operand, line), line
            )
            if expr.op == "~":
                builder.emit(mop("not", dest.low, low, line=line))
                builder.emit(mop("not", dest.high, high, line=line))
            else:
                builder.emit(mop("mov", dest.low, low, line=line))
                builder.emit(mop("mov", dest.high, high, line=line))
            return
        assert isinstance(expr, BinaryExpr)
        if expr.op == "^":
            raise SemanticError(
                "shifts on virtual registers are not supported by MPL",
                line,
            )
        left_high, left_low = self._virtual_halves(
            self.resolve(expr.left, line), line
        )
        right_high, right_low = self._virtual_halves(
            self.resolve(expr.right, line), line
        )
        if expr.op == "+":
            # The carry chain: low add sets C, high adc consumes it.
            builder.emit(mop("add", dest.low, left_low, right_low, line=line))
            builder.emit(mop("adc", dest.high, left_high, right_high, line=line))
        elif expr.op == "-":
            # Borrow chain: sub sets C = no-borrow; the high half adds
            # the complement with carry (classic multi-precision sbc).
            complement = builder.fresh_vreg("t")
            builder.emit(mop("sub", dest.low, left_low, right_low, line=line))
            builder.emit(mop("not", complement, right_high, line=line))
            builder.emit(mop("adc", dest.high, left_high, complement, line=line))
        elif expr.op in _HALF_BINOPS:
            name = _HALF_BINOPS[expr.op]
            builder.emit(mop(name, dest.low, left_low, right_low, line=line))
            builder.emit(mop(name, dest.high, left_high, right_high, line=line))
        else:  # pragma: no cover
            raise SemanticError(f"unknown operator {expr.op!r}", line)

    # -- conditions ---------------------------------------------------------
    def _branch(self, condition: Condition, true_label: str,
                false_label: str) -> None:
        builder = self.builder
        left = self.resolve(condition.left, condition.line)
        right = self.resolve(condition.right, condition.line)
        if isinstance(left, _Virtual) or isinstance(right, _Virtual):
            if condition.relop not in ("=", "#"):
                raise SemanticError(
                    "virtual registers only compare with = and #",
                    condition.line,
                )
            self._virtual_compare(left, right, condition.line)
            cond = "Z" if condition.relop == "=" else "NZ"
            builder.terminate(Branch(cond, true_label, false_label))
            return
        left_reg = self._scalar_value(left, condition.line)
        right_reg = self._scalar_value(right, condition.line)
        builder.emit(mop("cmp", None, left_reg, right_reg, line=condition.line))
        relop = condition.relop
        if relop in _RELOP_TO_COND:
            builder.terminate(
                Branch(_RELOP_TO_COND[relop], true_label, false_label)
            )
        elif relop == "<=":
            middle = builder.fresh_label("le")
            builder.terminate(Branch("Z", true_label, middle))
            builder.start_block(middle)
            builder.terminate(Branch("N", true_label, false_label))
        elif relop == ">":
            middle = builder.fresh_label("gt")
            builder.terminate(Branch("Z", false_label, middle))
            builder.start_block(middle)
            builder.terminate(Branch("NN", true_label, false_label))
        else:  # pragma: no cover
            raise SemanticError(f"unknown relop {relop!r}", condition.line)

    def _virtual_compare(self, left, right, line: int) -> None:
        """Set Z iff the two 32-bit quantities are equal."""
        builder = self.builder
        left_high, left_low = self._virtual_halves(left, line)
        right_high, right_low = self._virtual_halves(right, line)
        low_diff = builder.fresh_vreg("t")
        high_diff = builder.fresh_vreg("t")
        combined = builder.fresh_vreg("t")
        builder.emit(mop("xor", low_diff, left_low, right_low, line=line))
        builder.emit(mop("xor", high_diff, left_high, right_high, line=line))
        builder.emit(mop("or", combined, low_diff, high_diff, line=line))
        builder.emit(mop("cmp", None, combined, self._zero(), line=line))


def generate(
    ast: MplProgram, machine: MicroArchitecture, data_base: int = 0x6800
) -> MicroProgram:
    """Convenience wrapper: AST → micro-IR."""
    return MplCodegen(ast, machine, data_base).generate()
