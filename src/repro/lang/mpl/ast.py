"""MPL abstract syntax (survey §2.2.5, Eckhouse [10]).

MPL is "the earliest effort to design and implement a high level
microprogramming language"; its structure "is comparable to that of
SIMPL, but it offers somewhat better data-structuring facilities: …
one-dimensional arrays and virtual registers consisting of the
concatenation of physical ones."

Those two features are what this front end adds over SIMPL:

* ``virtual D = R1 : R2;`` — a 32-bit quantity whose high half lives
  in R1 and low half in R2; arithmetic on it compiles to carry-chained
  multi-precision micro-operations;
* ``array A[8];`` — a one-dimensional main-memory array, indexable by
  constants or registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Name:
    ident: str


@dataclass(frozen=True)
class NumberLit:
    value: int


@dataclass(frozen=True)
class ArrayRef:
    """``A[i]`` with a constant or register index."""

    array: str
    index: "Operand"


Operand = Name | NumberLit | ArrayRef


@dataclass(frozen=True)
class UnaryExpr:
    op: str  # "~" or "" (plain operand)
    operand: Operand


@dataclass(frozen=True)
class BinaryExpr:
    """One operator per expression, as in SIMPL."""

    op: str  # + - & | xor ^
    left: Operand
    right: Operand


Expr = UnaryExpr | BinaryExpr


@dataclass(frozen=True)
class Assign:
    """``expr -> dest;`` where dest is a register, virtual or element."""

    expr: Expr
    dest: Operand
    line: int = 0


@dataclass(frozen=True)
class Condition:
    left: Operand
    relop: str  # = # < <= > >=
    right: Operand
    line: int = 0


@dataclass
class Block:
    body: list["Stmt"] = field(default_factory=list)


@dataclass
class IfStmt:
    condition: Condition
    then_body: "Stmt"
    else_body: "Stmt | None" = None
    line: int = 0


@dataclass
class WhileStmt:
    condition: Condition
    body: "Stmt" = None  # type: ignore[assignment]
    line: int = 0


Stmt = Assign | Block | IfStmt | WhileStmt


@dataclass(frozen=True)
class VirtualDecl:
    """``virtual D = HI : LO;`` — register concatenation."""

    name: str
    high: str
    low: str
    line: int = 0


@dataclass(frozen=True)
class ArrayDecl:
    """``array A[n];`` — a main-memory array of n words."""

    name: str
    size: int
    line: int = 0


@dataclass
class MplProgram:
    name: str
    constants: dict[str, int] = field(default_factory=dict)
    virtuals: dict[str, VirtualDecl] = field(default_factory=dict)
    arrays: dict[str, ArrayDecl] = field(default_factory=dict)
    body: Block = field(default_factory=Block)
