"""MPL compiler driver (survey §2.2.5).

Historically MPL targeted a *vertical* machine, so the default
composer is sequential (one micro-operation per word, which is all a
vertical target can hold anyway); pass a different composer to pack
for horizontal machines.
"""

from __future__ import annotations

from repro.asm.assembler import assemble
from repro.compose.base import Composer, compose_program
from repro.compose.linear import SequentialComposer
from repro.lang.common.legalize import legalize
from repro.lang.mpl.codegen import generate
from repro.lang.mpl.parser import parse_mpl
from repro.lang.yalll.compiler import CompileResult
from repro.machine.machine import MicroArchitecture
from repro.regalloc.linear_scan import AllocationResult, LinearScanAllocator


def compile_mpl(
    source: str,
    machine: MicroArchitecture,
    *,
    composer: Composer | None = None,
    data_base: int = 0x6800,
) -> CompileResult:
    """Compile MPL source for a machine."""
    ast = parse_mpl(source)
    mir = generate(ast, machine, data_base)
    stats = legalize(mir, machine)
    if mir.virtual_regs():
        allocation = LinearScanAllocator().allocate(mir, machine)
    else:
        allocation = AllocationResult(allocator="none")
    composed = compose_program(mir, machine, composer or SequentialComposer())
    loaded = assemble(composed, machine)
    return CompileResult(
        mir=mir,
        composed=composed,
        loaded=loaded,
        legalize_stats=stats,
        allocation=allocation,
    )
