"""MPL compiler driver (survey §2.2.5).

Historically MPL targeted a *vertical* machine, so the default
composer is sequential (one micro-operation per word, which is all a
vertical target can hold anyway); pass a different composer to pack
for horizontal machines.
"""

from __future__ import annotations

from repro.asm.assembler import assemble
from repro.compose.base import Composer, compose_program
from repro.compose.linear import SequentialComposer
from repro.lang.common.legalize import legalize
from repro.lang.common.restart import apply_restart_safety
from repro.lang.mpl.codegen import generate
from repro.lang.mpl.parser import parse_mpl
from repro.lang.yalll.compiler import CompileResult
from repro.machine.machine import MicroArchitecture
from repro.obs.tracer import NULL_TRACER
from repro.regalloc.linear_scan import AllocationResult, LinearScanAllocator


def compile_mpl(
    source: str,
    machine: MicroArchitecture,
    *,
    composer: Composer | None = None,
    data_base: int = 0x6800,
    restart_safe: bool = False,
    tracer=NULL_TRACER,
    cache=None,
) -> CompileResult:
    """Compile MPL source for a machine.

    ``restart_safe=True`` applies the §2.1.5 idempotence transform
    after legalization (see ``repro.lang.common.restart``).

    ``cache`` (a :class:`repro.cache.CompileCache`) short-circuits
    recompilation of identical inputs.
    """
    if cache is not None:
        return cache.get_or_compile(
            source, "mpl", machine,
            {
                "composer": getattr(composer, "name", None),
                "data_base": data_base,
                "restart_safe": restart_safe,
            },
            lambda: compile_mpl(
                source, machine, composer=composer, data_base=data_base,
                restart_safe=restart_safe, tracer=tracer,
            ),
            tracer=tracer,
        )
    with tracer.span("compile", lang="mpl", machine=machine.name):
        with tracer.span("parse"):
            ast = parse_mpl(source)
        with tracer.span("codegen") as span:
            mir = generate(ast, machine, data_base)
            span.set(ops=mir.n_ops())
        with tracer.span("legalize") as span:
            stats = legalize(mir, machine)
            span.set(ops_before=stats.ops_before, ops_after=stats.ops_after)
        hazards = apply_restart_safety(
            mir, machine, transform=restart_safe, tracer=tracer
        )
        with tracer.span("regalloc") as span:
            if mir.virtual_regs():
                allocation = LinearScanAllocator(tracer=tracer).allocate(
                    mir, machine
                )
            else:
                allocation = AllocationResult(allocator="none")
            span.set(allocator=allocation.allocator,
                     spilled=allocation.n_spilled)
        with tracer.span("compose") as span:
            composed = compose_program(
                mir, machine,
                composer or SequentialComposer(tracer=tracer), tracer,
            )
            span.set(words=composed.n_instructions(),
                     compaction=round(composed.compaction_ratio(), 3))
        with tracer.span("assemble") as span:
            loaded = assemble(composed, machine)
            span.set(words=len(loaded))
    return CompileResult(
        mir=mir,
        composed=composed,
        loaded=loaded,
        legalize_stats=stats,
        allocation=allocation,
        restart_hazards=hazards,
    )
