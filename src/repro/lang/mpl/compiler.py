"""MPL front end stages + registration (survey §2.2.5).

Historically MPL targeted a *vertical* machine, so the default
composer is sequential (one micro-operation per word, which is all a
vertical target can hold anyway); pass a different composer to pack
for horizontal machines.  Allocation policy is ``"auto"``: MPL binds
registers, so an allocator runs only for introduced temporaries.
"""

from __future__ import annotations

from repro.compose.linear import SequentialComposer
from repro.lang.mpl.codegen import generate
from repro.lang.mpl.parser import parse_mpl
from repro.machine.machine import MicroArchitecture
from repro.obs.tracer import NULL_TRACER
from repro.pipeline import CompileResult, Pipeline, Stage, standard_tail
from repro.registry import LanguageSpec, register_language


def _parse(ctx) -> None:
    ctx.ast = parse_mpl(ctx.source)


def _codegen(ctx) -> dict:
    ctx.mir = generate(ctx.ast, ctx.machine, ctx.opt("data_base", 0x6800))
    return {"ops": ctx.mir.n_ops()}


PIPELINE = Pipeline(
    lang="mpl",
    stages=(
        Stage("parse", _parse),
        Stage("codegen", _codegen),
        *standard_tail(
            regalloc="auto",
            default_composer=lambda ctx: SequentialComposer(tracer=ctx.tracer),
        ),
    ),
    option_defaults={
        "composer": None,
        "data_base": 0x6800,
        "restart_safe": False,
    },
)

SPEC = register_language(LanguageSpec(
    name="mpl",
    title="MPL - the earliest high level microprogramming language",
    section="2.2.5",
    pipeline=PIPELINE,
    capabilities=(
        "programmer_binding",
        "virtual_registers",
        "arrays",
    ),
    default_composer="sequential",
))


def compile_mpl(
    source: str,
    machine: MicroArchitecture,
    *,
    composer=None,
    data_base: int = 0x6800,
    restart_safe: bool = False,
    tracer=NULL_TRACER,
    cache=None,
    dump_after=None,
) -> CompileResult:
    """Compile MPL source for a machine (see :data:`PIPELINE`)."""
    return PIPELINE.run(
        source, machine, tracer=tracer, cache=cache, dump_after=dump_after,
        composer=composer, data_base=data_base, restart_safe=restart_safe,
    )
