"""Sequential and linear (first-come-first-served) composition.

``SequentialComposer`` is the do-nothing baseline — one micro-operation
per microinstruction, which is also how the survey describes YALLL's
unoptimized VAX-11 implementation (§2.2.4).

``LinearComposer`` is the classic first-come-first-served packing of
Ramamoorthy & Tsuchiya's SIMPL compiler [18]: ops are visited in
program order, and each is dropped into the *earliest* existing
microinstruction that respects its dependences and causes no resource
conflicts (appending a new one if none fits).
"""

from __future__ import annotations

from repro.compose.base import MicroInstruction
from repro.compose.common import (
    edge_kinds,
    emit_block_stats,
    relations_for,
    try_place,
)
from repro.compose.conflicts import ConflictModel
from repro.errors import CompositionError
from repro.machine.machine import MicroArchitecture
from repro.mir.block import BasicBlock
from repro.mir.deps import OUTPUT, build_dependence_graph
from repro.obs.tracer import NULL_TRACER


class SequentialComposer:
    """One micro-operation per microinstruction (no compaction)."""

    name = "sequential"

    def __init__(self, tracer=NULL_TRACER):
        self.tracer = tracer

    def compose_block(
        self, block: BasicBlock, machine: MicroArchitecture
    ) -> list[MicroInstruction]:
        model = ConflictModel(machine)
        instructions: list[MicroInstruction] = []
        for op in block.ops:
            instruction = MicroInstruction()
            if try_place(model, instruction, op, {}) is None:
                raise CompositionError(
                    f"{machine.name}: cannot place {op} even alone"
                )
            instructions.append(instruction)
        emit_block_stats(self.tracer, self.name, block, instructions, model)
        return instructions


class LinearComposer:
    """First-come-first-served packing in program order [18]."""

    name = "linear"

    def __init__(self, tracer=NULL_TRACER):
        self.tracer = tracer

    def compose_block(
        self, block: BasicBlock, machine: MicroArchitecture
    ) -> list[MicroInstruction]:
        model = ConflictModel(machine)
        graph = build_dependence_graph(block, machine)
        kinds = edge_kinds(graph)
        instructions: list[MicroInstruction] = []
        #: op index -> (instruction index, position within instruction)
        location: dict[int, tuple[int, int]] = {}

        for op_index, op in enumerate(block.ops):
            lower = 0
            for pred in graph.predecessors(op_index):
                if pred >= graph.n_ops:
                    continue
                pred_mi, _ = location[pred]
                pair = kinds[(pred, op_index)]
                # Output dependence can never share an instruction;
                # flow/anti may, subject to the conflict model's phase
                # rules, so the scan may start at the predecessor's slot.
                lower = max(lower, pred_mi + 1 if OUTPUT in pair else pred_mi)
            placed_at = None
            for mi_index in range(lower, len(instructions) + 1):
                if mi_index == len(instructions):
                    instructions.append(MicroInstruction())
                positions = {
                    i: pos for i, (mi, pos) in location.items() if mi == mi_index
                }
                relations = relations_for(op_index, positions, kinds)
                placement = try_place(
                    model, instructions[mi_index], op, relations
                )
                if placement is not None:
                    placed_at = (mi_index, len(instructions[mi_index].placed) - 1)
                    break
            if placed_at is None:  # pragma: no cover - fresh MI always fits
                raise CompositionError(f"{machine.name}: cannot place {op}")
            location[op_index] = placed_at
            if self.tracer.enabled:
                self.tracer.instant(
                    "compose.place", cat="compose", algorithm=self.name,
                    block=block.label, op=str(op), word=placed_at[0],
                    earliest=lower, scanned=placed_at[0] - lower + 1,
                )
        emit_block_stats(self.tracer, self.name, block, instructions, model)
        return instructions
