"""Maximal-parallelism identification (Dasgupta & Tartar [3]).

For straight-line microcode, the maximal parallelism available under
unlimited resources is given by the dependence levels of the ops: two
operations can execute simultaneously iff no dependence path connects
them, and the ASAP level partition groups each op with the earliest
set it can join.  ``maximal_parallel_sets`` exposes that analysis;
:class:`LevelComposer` turns it into a composition algorithm by packing
each level greedily and splitting on resource conflicts — which makes
the *gap* between data parallelism and machine parallelism measurable
(experiment E7 reports both).
"""

from __future__ import annotations

from repro.compose.base import MicroInstruction
from repro.compose.common import (
    edge_kinds,
    emit_block_stats,
    relations_for,
    try_place,
)
from repro.compose.conflicts import ConflictModel
from repro.machine.machine import MicroArchitecture
from repro.mir.block import BasicBlock
from repro.mir.deps import DependenceGraph, build_dependence_graph
from repro.mir.ops import MicroOp
from repro.obs.tracer import NULL_TRACER


def maximal_parallel_sets(
    block: BasicBlock, machine: MicroArchitecture
) -> list[list[int]]:
    """Partition op indices into maximal simultaneously-executable sets.

    Ops sharing an ASAP level have no dependence path between them (any
    dependence strictly increases the level), so each level is a set of
    mutually parallel operations; the partition as a whole is the
    "maximal parallelism" of the straight-line program in the sense of
    Dasgupta & Tartar [3].
    """
    graph = build_dependence_graph(block, machine)
    return _levels_to_sets(graph)


def _levels_to_sets(graph: DependenceGraph) -> list[list[int]]:
    levels = graph.asap_levels()
    if not levels:
        return []
    sets: list[list[int]] = [[] for _ in range(max(levels) + 1)]
    for op_index, level in enumerate(levels):
        sets[level].append(op_index)
    return sets


def data_parallelism(block: BasicBlock, machine: MicroArchitecture) -> float:
    """Average ops per maximal parallel set (resource-blind parallelism)."""
    sets = maximal_parallel_sets(block, machine)
    if not sets:
        return 0.0
    return sum(len(s) for s in sets) / len(sets)


class LevelComposer:
    """Pack ASAP levels greedily, splitting on resource conflicts."""

    name = "asap-level"

    def __init__(self, tracer=NULL_TRACER):
        self.tracer = tracer

    def compose_block(
        self, block: BasicBlock, machine: MicroArchitecture
    ) -> list[MicroInstruction]:
        model = ConflictModel(machine)
        graph = build_dependence_graph(block, machine)
        kinds = edge_kinds(graph)
        instructions: list[MicroInstruction] = []
        levels = _levels_to_sets(graph)
        for level_index, level in enumerate(levels):
            pending: list[int] = list(level)
            while pending:
                instruction = MicroInstruction()
                positions: dict[int, int] = {}
                still_pending: list[int] = []
                for op_index in pending:
                    relations = relations_for(op_index, positions, kinds)
                    placement = try_place(
                        model, instruction, block.ops[op_index], relations
                    )
                    if placement is None:
                        still_pending.append(op_index)
                    else:
                        positions[op_index] = len(instruction.placed) - 1
                instructions.append(instruction)
                if self.tracer.enabled and still_pending:
                    # A level split is exactly the gap between data
                    # parallelism and machine parallelism.
                    self.tracer.instant(
                        "compose.level-split", cat="compose",
                        algorithm=self.name, block=block.label,
                        level=level_index, deferred=len(still_pending),
                    )
                pending = still_pending
        emit_block_stats(
            self.tracer, self.name, block, instructions, model,
            levels=len(levels),
        )
        return instructions
