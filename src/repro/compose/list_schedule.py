"""Critical-path list scheduling (Tsuchiya & Gonzalez [22] flavour).

Microinstructions are built one at a time.  At each step the *ready*
operations (all dependence predecessors already scheduled) are tried in
order of decreasing critical-path height — urgent chains first — and
greedily packed until nothing more fits.  Unlike first-come-first-
served packing this reorders independent operations, which typically
buys a few extra percent of compaction on wide machines.
"""

from __future__ import annotations

from repro.compose.base import MicroInstruction
from repro.compose.common import (
    edge_kinds,
    emit_block_stats,
    relations_for,
    try_place,
)
from repro.compose.conflicts import ConflictModel
from repro.errors import CompositionError
from repro.machine.machine import MicroArchitecture
from repro.mir.block import BasicBlock
from repro.mir.deps import build_dependence_graph
from repro.obs.tracer import NULL_TRACER


class ListScheduler:
    """Height-priority greedy packing."""

    name = "list"

    def __init__(self, tracer=NULL_TRACER):
        self.tracer = tracer

    def compose_block(
        self, block: BasicBlock, machine: MicroArchitecture
    ) -> list[MicroInstruction]:
        model = ConflictModel(machine)
        graph = build_dependence_graph(block, machine)
        kinds = edge_kinds(graph)
        heights = graph.heights()
        n = graph.n_ops

        unscheduled = set(range(n))
        #: op index -> (instruction index, position)
        location: dict[int, tuple[int, int]] = {}
        instructions: list[MicroInstruction] = []

        while unscheduled:
            mi_index = len(instructions)
            instruction = MicroInstruction()
            instructions.append(instruction)
            current_positions: dict[int, int] = {}
            packed_any = True
            while packed_any:
                packed_any = False
                ready = sorted(
                    (
                        j
                        for j in unscheduled
                        if all(
                            pred in location
                            for pred in graph.predecessors(j)
                            if pred < n
                        )
                    ),
                    key=lambda j: (-heights[j], j),
                )
                for op_index in ready:
                    relations = relations_for(op_index, current_positions, kinds)
                    # Predecessors placed in *this* instruction must be
                    # represented in relations so phase rules apply; any
                    # predecessor in an earlier instruction is already
                    # satisfied by sequencing.
                    placement = try_place(
                        model, instruction, block.ops[op_index], relations
                    )
                    if placement is not None:
                        position = len(instruction.placed) - 1
                        location[op_index] = (mi_index, position)
                        current_positions[op_index] = position
                        unscheduled.discard(op_index)
                        packed_any = True
            if not instruction.placed:  # pragma: no cover - defensive
                raise CompositionError(
                    f"{machine.name}: list scheduler made no progress"
                )
            if self.tracer.enabled:
                self.tracer.instant(
                    "compose.pack", cat="compose", algorithm=self.name,
                    block=block.label, word=mi_index,
                    ops=[str(p.op) for p in instruction.placed],
                    heights=[heights[j] for j in sorted(current_positions)],
                )
        emit_block_stats(self.tracer, self.name, block, instructions, model)
        return instructions
