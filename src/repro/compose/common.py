"""Shared helpers for composition algorithms."""

from __future__ import annotations

from repro.compose.base import MicroInstruction, PlacedOp
from repro.compose.conflicts import ConflictModel, Relations
from repro.mir.block import BasicBlock
from repro.mir.deps import DependenceGraph
from repro.mir.ops import MicroOp
from repro.obs.tracer import NULL_TRACER


def emit_block_stats(
    tracer,
    algorithm: str,
    block: BasicBlock,
    instructions: list[MicroInstruction],
    model: ConflictModel,
    **extra,
) -> None:
    """Per-block observability summary every composer emits.

    Records the compaction delta (ops in → words out) and the conflict
    model's rejection tallies, so algorithms are comparable event for
    event (experiment E7).  Free when the tracer is disabled.
    """
    if not tracer.enabled:
        return
    ops = len(block.ops)
    words = len(instructions)
    tracer.instant(
        "compose.block",
        cat="compose",
        algorithm=algorithm,
        block=block.label,
        ops=ops,
        words=words,
        compaction=round(ops / words, 3) if words else 0.0,
        rejections=model.rejection_counts(),
        **extra,
    )


def edge_kinds(graph: DependenceGraph) -> dict[tuple[int, int], set[str]]:
    """Collect dependence kinds per (src, dst) op pair."""
    kinds: dict[tuple[int, int], set[str]] = {}
    for edge in graph.edges:
        if edge.dst < graph.n_ops:
            kinds.setdefault((edge.src, edge.dst), set()).add(edge.kind)
    return kinds


def relations_for(
    op_index: int,
    instruction_positions: dict[int, int],
    kinds: dict[tuple[int, int], set[str]],
) -> Relations:
    """Relations of ops already in a microinstruction to a candidate.

    ``instruction_positions`` maps op index -> position inside the
    instruction under construction.
    """
    relations: Relations = {}
    for placed_index, position in instruction_positions.items():
        pair = kinds.get((placed_index, op_index))
        if pair:
            relations[position] = pair
    return relations


def try_place(
    model: ConflictModel,
    instruction: MicroInstruction,
    op: MicroOp,
    relations: Relations,
) -> PlacedOp | None:
    """Try every machine variant of an op; add the first that fits.

    Returns the successful placement, or None if no variant fits.
    """
    for placed in model.placements(op):
        if model.can_add(instruction, placed, relations):
            instruction.placed.append(placed)
            return placed
    return None
