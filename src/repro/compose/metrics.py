"""Composition quality metrics (experiment E7's measurements)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compose.base import ComposedProgram, Composer, MicroInstruction, compose_program
from repro.machine.machine import MicroArchitecture
from repro.mir.block import BasicBlock
from repro.mir.program import MicroProgram


@dataclass(frozen=True)
class CompactionStats:
    """Result of composing one block/program with one algorithm."""

    composer: str
    n_ops: int
    n_instructions: int
    est_cycles: int

    @property
    def ratio(self) -> float:
        """Ops per microinstruction (higher = tighter packing)."""
        return self.n_ops / self.n_instructions if self.n_instructions else 0.0


def block_stats(
    composer: Composer, block: BasicBlock, machine: MicroArchitecture
) -> CompactionStats:
    """Compose a single block and measure it."""
    instructions = composer.compose_block(block, machine)
    return CompactionStats(
        composer=composer.name,
        n_ops=len(block.ops),
        n_instructions=len(instructions),
        est_cycles=estimate_cycles(instructions, machine),
    )


def program_stats(
    composer: Composer, program: MicroProgram, machine: MicroArchitecture
) -> CompactionStats:
    """Compose a whole program and measure it."""
    composed = compose_program(program, machine, composer)
    cycles = sum(
        estimate_cycles(block.instructions, machine)
        for block in composed.blocks.values()
    )
    return CompactionStats(
        composer=composer.name,
        n_ops=composed.n_ops(),
        n_instructions=composed.n_instructions(),
        est_cycles=cycles,
    )


def estimate_cycles(
    instructions: list[MicroInstruction], machine: MicroArchitecture
) -> int:
    """Static single-pass cycle estimate (each MI = max op latency)."""
    return sum(mi.cycles(machine) for mi in instructions)


def compare_composers(
    composers: list[Composer],
    program: MicroProgram,
    machine: MicroArchitecture,
) -> list[CompactionStats]:
    """Run several algorithms over the same program."""
    return [program_stats(composer, program, machine) for composer in composers]
