"""Resource-conflict model (DeWitt's control-word model [7]).

Decides whether a candidate micro-operation may join a partially built
microinstruction.  Three rule families:

1. **Field conflicts** — two ops needing the same control-word field at
   different values cannot coexist (the essence of horizontal
   encoding).
2. **Unit capacity** — at most ``unit.count`` ops per functional unit.
3. **Dependence/phase legality** — a flow-dependent pair may share one
   microinstruction only on machines with phase chaining, with the
   consumer in a strictly later phase and a single-cycle producer; an
   anti-dependent pair is legal when the writer's phase is not earlier
   than the reader's; output-dependent pairs never share.

The model is machine-generic: everything it needs comes from the
:class:`~repro.machine.machine.MicroArchitecture` description, so every
composition algorithm works on every machine (survey §2.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConflictError, EncodingError
from repro.machine.machine import MicroArchitecture
from repro.machine.opspec import OpSpec
from repro.mir.deps import ANTI, FLOW, OUTPUT
from repro.mir.ops import MicroOp
from repro.compose.base import MicroInstruction, PlacedOp

#: Relation of an already-placed op to the candidate being added.
#: ``(kind)`` means: placed-op --kind--> candidate.
Relations = dict[int, set[str]]


@dataclass
class ConflictModel:
    """Stateless conflict oracle for one machine.

    The ``rejected_*`` tallies count :meth:`can_add` refusals by cause;
    composers surface them through the observability layer so every
    algorithm's conflict behaviour is comparable (experiment E7).
    """

    machine: MicroArchitecture
    _settings_cache: dict[PlacedOp, dict[str, str | int]] = field(default_factory=dict)
    #: Upper bound on memoised placements.  Long-lived models (campaign
    #: harnesses compose hundreds of programs through one instance)
    #: previously grew the cache without limit; once full, the oldest
    #: entries are evicted FIFO — correctness is unaffected, evicted
    #: placements are simply re-resolved on next use.
    settings_cache_limit: int = 4096
    rejected_field: int = 0
    rejected_unit: int = 0
    rejected_dependence: int = 0

    def rejection_counts(self) -> dict[str, int]:
        """Refusals by cause, for block-level observability events."""
        return {
            "field": self.rejected_field,
            "unit": self.rejected_unit,
            "dependence": self.rejected_dependence,
        }

    def reset(self) -> None:
        """Drop memoised settings and zero the rejection tallies.

        Call between independent compositions when one model instance
        is reused across a long run (e.g. a campaign matrix) and the
        per-program tallies should not accumulate.
        """
        self._settings_cache.clear()
        self.rejected_field = 0
        self.rejected_unit = 0
        self.rejected_dependence = 0

    def settings_of(self, placed: PlacedOp) -> dict[str, str | int]:
        cached = self._settings_cache.get(placed)
        if cached is None:
            cached = placed.settings(self.machine)
            if len(self._settings_cache) >= self.settings_cache_limit:
                self._settings_cache.pop(next(iter(self._settings_cache)))
            self._settings_cache[placed] = cached
        return cached

    # ------------------------------------------------------------------
    def fields_conflict(self, a: PlacedOp, b: PlacedOp) -> bool:
        """Whether two placements disagree on any control-word field."""
        settings_a = self.settings_of(a)
        settings_b = self.settings_of(b)
        common = settings_a.keys() & settings_b.keys()
        return any(settings_a[name] != settings_b[name] for name in common)

    def unit_overflow(
        self, instruction: MicroInstruction, candidate: PlacedOp
    ) -> bool:
        """Whether adding the candidate exceeds a unit's instance count."""
        unit = self.machine.unit(candidate.spec.unit)
        used = sum(
            1 for p in instruction.placed if p.spec.unit == candidate.spec.unit
        )
        return used + 1 > unit.count

    def dependence_legal(
        self,
        placed: PlacedOp,
        candidate: PlacedOp,
        kinds: set[str],
    ) -> bool:
        """Whether placed --kinds--> candidate may share one instruction."""
        if OUTPUT in kinds:
            return False
        placed_phase = placed.phase(self.machine)
        candidate_phase = candidate.phase(self.machine)
        if FLOW in kinds:
            if not self.machine.allows_phase_chaining:
                return False
            if candidate_phase <= placed_phase:
                return False
            if self.machine.latency_of(placed.spec) > 1:
                return False
        if ANTI in kinds and candidate_phase < placed_phase:
            return False
        return True

    # ------------------------------------------------------------------
    def can_add(
        self,
        instruction: MicroInstruction,
        candidate: PlacedOp,
        relations: Relations | None = None,
    ) -> bool:
        """Whether the candidate may join the instruction.

        ``relations`` maps positions in ``instruction.placed`` to the
        dependence kinds running from that op to the candidate (empty /
        missing = independent).
        """
        if self.unit_overflow(instruction, candidate):
            self.rejected_unit += 1
            return False
        for position, placed in enumerate(instruction.placed):
            if self.fields_conflict(placed, candidate):
                self.rejected_field += 1
                return False
            kinds = (relations or {}).get(position, set())
            if kinds and not self.dependence_legal(placed, candidate, kinds):
                self.rejected_dependence += 1
                return False
        return True

    def placements(self, op: MicroOp) -> list[PlacedOp]:
        """All machine variants of an op as candidate placements.

        Variants whose field settings cannot encode the op's operands
        (e.g. a register missing from that variant's selector) are
        filtered out.
        """
        placements: list[PlacedOp] = []
        for spec in self.machine.op_variants(op.op):
            placed = PlacedOp(op, spec)
            try:
                resolved = self.settings_of(placed)
            except EncodingError:
                continue
            if self._encodable(resolved):
                placements.append(placed)
        if not placements:
            raise ConflictError(
                f"{self.machine.name}: no variant of {op} is encodable"
            )
        return placements

    def _encodable(self, resolved: dict[str, str | int]) -> bool:
        for name, value in resolved.items():
            fld = self.machine.control[name]
            if fld.is_immediate:
                if not isinstance(value, int):
                    return False
                if not 0 <= value <= fld.mask:
                    return False
            elif isinstance(value, str) and value not in fld.encodings:
                return False
        return True

    def check_instruction(self, instruction: MicroInstruction) -> None:
        """Validate a fully built instruction (S* programmer-composed
        microinstructions are checked with this, survey §2.2.3).

        Raises :class:`ConflictError` naming the offending pair.
        """
        for index, candidate in enumerate(instruction.placed):
            partial = MicroInstruction(placed=list(instruction.placed[:index]))
            if self.unit_overflow(partial, candidate):
                raise ConflictError(
                    f"unit {candidate.spec.unit!r} over capacity with {candidate.op}"
                )
            for placed in partial.placed:
                if self.fields_conflict(placed, candidate):
                    raise ConflictError(
                        f"{placed.op} and {candidate.op} conflict on a "
                        f"control-word field"
                    )
