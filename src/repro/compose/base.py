"""Composition core: placed ops, microinstructions, composed programs.

Composition ("compaction") turns a sequential list of micro-operations
into horizontal microinstructions — the problem the survey calls
"far from trivial" and credits to [18, 22, 3, 21].  All algorithms in
this package produce the same output type so they can be compared
directly (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import CompositionError
from repro.machine.machine import MicroArchitecture
from repro.machine.opspec import OpSpec
from repro.mir.block import BasicBlock, Terminator
from repro.mir.operands import Imm, Reg
from repro.mir.ops import MicroOp
from repro.mir.program import MicroProgram, Procedure
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class PlacedOp:
    """A micro-operation bound to a concrete machine variant."""

    op: MicroOp
    spec: OpSpec

    def settings(self, machine: MicroArchitecture) -> dict[str, str | int]:
        """Resolved control-word settings of this placement."""
        dest = self.op.dest.name if self.op.dest is not None else None
        srcs = tuple(
            s.name if isinstance(s, Reg) else s.value for s in self.op.srcs
        )
        return machine.resolve_settings(self.spec, dest, srcs)

    def phase(self, machine: MicroArchitecture) -> int:
        return machine.phase_of(self.spec)

    def __str__(self) -> str:
        return f"{self.op} [{self.spec.key}]"


@dataclass
class MicroInstruction:
    """One horizontal microinstruction: parallel placed ops + sequencing."""

    placed: list[PlacedOp] = field(default_factory=list)
    terminator: Terminator | None = None
    #: Single-slot simulator cache: (machine id, phase groups, cycles).
    #: Populated lazily by :meth:`phase_groups`; excluded from equality
    #: so cached and uncached instructions compare the same.
    _sim_cache: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def ops(self) -> list[MicroOp]:
        return [p.op for p in self.placed]

    def phase_groups(
        self, machine: MicroArchitecture
    ) -> tuple[tuple[PlacedOp, ...], ...]:
        """Placed ops grouped by phase, in phase order (cached).

        Grouping depends only on the machine description, never on
        dynamic state, so it is computed once per (instruction,
        machine) and reused by both execution engines — this is the
        hoisted form of the per-execution ``sorted(by_phase)`` the
        interpreter used to rebuild on every microinstruction.
        """
        cache = self._sim_cache
        if cache is not None and cache[0] is machine:
            return cache[1]
        by_phase: dict[int, list[PlacedOp]] = {}
        for placed in self.placed:
            by_phase.setdefault(placed.phase(machine), []).append(placed)
        groups = tuple(
            tuple(by_phase[phase]) for phase in sorted(by_phase)
        )
        self._sim_cache = (machine, groups, self.cycles(machine))
        return groups

    def cached_cycles(self, machine: MicroArchitecture) -> int:
        """Like :meth:`cycles`, but memoised alongside the phase groups."""
        cache = self._sim_cache
        if cache is not None and cache[0] is machine:
            return cache[2]
        self.phase_groups(machine)
        return self._sim_cache[2]  # type: ignore[index]

    def settings(self, machine: MicroArchitecture) -> dict[str, str | int]:
        """Merged control-word settings of all placed ops.

        Raises :class:`CompositionError` if two ops disagree on a field
        — callers normally prevent this via the conflict model, so a
        failure here indicates a composer bug.
        """
        merged: dict[str, str | int] = {}
        for placed in self.placed:
            for name, value in placed.settings(machine).items():
                if name in merged and merged[name] != value:
                    raise CompositionError(
                        f"field {name!r} set to both {merged[name]!r} and "
                        f"{value!r} in one microinstruction"
                    )
                merged[name] = value
        return merged

    def cycles(self, machine: MicroArchitecture) -> int:
        """Cycles this microinstruction occupies (max op latency)."""
        if not self.placed:
            return 1
        return max(machine.latency_of(p.spec) for p in self.placed)

    def __str__(self) -> str:
        body = " || ".join(str(p.op) for p in self.placed) or "nop"
        if self.terminator is not None:
            body += f" ; {self.terminator}"
        return body


@dataclass
class ComposedBlock:
    """A basic block after composition."""

    label: str
    instructions: list[MicroInstruction] = field(default_factory=list)

    def n_ops(self) -> int:
        return sum(len(mi.placed) for mi in self.instructions)


@dataclass
class ComposedProgram:
    """A whole program after composition, ready for assembly."""

    name: str
    blocks: dict[str, ComposedBlock] = field(default_factory=dict)
    entry: str = ""
    procedures: dict[str, Procedure] = field(default_factory=dict)
    constants: dict[str, int] = field(default_factory=dict)

    def n_instructions(self) -> int:
        return sum(len(b.instructions) for b in self.blocks.values())

    def n_ops(self) -> int:
        return sum(b.n_ops() for b in self.blocks.values())

    def compaction_ratio(self) -> float:
        """Ops per microinstruction (1.0 = fully sequential)."""
        instructions = self.n_instructions()
        return self.n_ops() / instructions if instructions else 0.0

    def __str__(self) -> str:
        lines = [f"composed {self.name} (entry {self.entry})"]
        for block in self.blocks.values():
            lines.append(f"{block.label}:")
            lines.extend(f"    {mi}" for mi in block.instructions)
        return "\n".join(lines)


class Composer(Protocol):
    """A composition algorithm over one basic block."""

    #: Short identifier used in benchmark tables.
    name: str

    def compose_block(
        self, block: BasicBlock, machine: MicroArchitecture
    ) -> list[MicroInstruction]:
        """Compose the block's ops into microinstructions (no terminator)."""
        ...  # pragma: no cover


def compose_program(
    program: MicroProgram,
    machine: MicroArchitecture,
    composer: Composer,
    tracer=NULL_TRACER,
) -> ComposedProgram:
    """Compose every block of a program with the given algorithm.

    The block's terminator is attached to its final microinstruction
    (an empty one is appended for blocks with no ops, so every label
    maps to at least one control-store word).

    With a recording ``tracer``, each block becomes a span carrying its
    compaction delta (ops in → words out); composers constructed with
    the same tracer additionally emit per-decision events inside it.
    """
    program.validate()
    composed = ComposedProgram(
        name=program.name,
        entry=program.entry,
        procedures=dict(program.procedures),
        constants=dict(program.constants),
    )
    for label, block in program.blocks.items():
        with tracer.span(
            f"compose {label}", cat="compose",
            algorithm=composer.name, ops=len(block.ops),
        ) as span:
            instructions = composer.compose_block(block, machine)
            if not instructions:
                instructions = [MicroInstruction()]
            if instructions[-1].terminator is not None:
                raise CompositionError(
                    f"composer {composer.name!r} set a terminator itself"
                )
            instructions[-1].terminator = block.terminator
            composed.blocks[label] = ComposedBlock(label, instructions)
            span.set(
                words=len(instructions),
                compaction=round(len(block.ops) / len(instructions), 3),
            )
    return composed
