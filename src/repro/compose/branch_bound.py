"""Branch-and-bound minimal composition (Tokoro et al. [21] flavour).

Searches over assignments of ops (in program order, which is a
topological order of the dependence DAG) to microinstruction indices,
pruning with the incumbent solution and a critical-path lower bound.
The list scheduler seeds the incumbent, so even when the node or
wall-clock budget is exhausted the result is never worse than list
scheduling — on small blocks the result is provably minimal.

Graceful degradation: pathological blocks cannot hang the compiler.
Besides the search-node budget, an optional wall-clock deadline
(``deadline_ms``) bounds each block; exhausting either budget abandons
the search, keeps the incumbent (i.e. falls back to the list-schedule
seed or the best improvement found so far), and emits a
``compose.budget_exhausted`` warning event on the tracer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.compose.base import MicroInstruction, PlacedOp
from repro.compose.common import edge_kinds, emit_block_stats, relations_for
from repro.compose.conflicts import ConflictModel
from repro.compose.list_schedule import ListScheduler
from repro.machine.machine import MicroArchitecture
from repro.mir.block import BasicBlock
from repro.mir.deps import OUTPUT, build_dependence_graph
from repro.obs.tracer import NULL_TRACER


@dataclass
class BranchBoundComposer:
    """Exhaustive minimal packing with pruning.

    Attributes:
        node_budget: Maximum search nodes before falling back to the
            best solution found so far.
        deadline_ms: Optional wall-clock budget per block, in
            milliseconds; exceeding it abandons the search with the
            incumbent (never worse than the list-schedule seed).
    """

    node_budget: int = 200_000
    deadline_ms: float | None = None
    name: str = "branch-bound"
    tracer: object = NULL_TRACER

    def compose_block(
        self, block: BasicBlock, machine: MicroArchitecture
    ) -> list[MicroInstruction]:
        seed = ListScheduler().compose_block(block, machine)
        n = len(block.ops)
        if n == 0:
            return []
        model = ConflictModel(machine)
        graph = build_dependence_graph(block, machine)
        kinds = edge_kinds(graph)
        heights = graph.heights()
        # Heights are in cycles (latency-weighted); for MI-count bounding
        # use unit-weight chain lengths instead.
        chain = self._chain_lengths(graph)

        best: list[list[PlacedOp]] = [list(mi.placed) for mi in seed]
        best_length = len(seed)
        state: list[MicroInstruction] = []
        location: dict[int, tuple[int, int]] = {}
        nodes_left = self.node_budget
        deadline = (
            time.monotonic() + self.deadline_ms / 1000.0
            if self.deadline_ms is not None else None
        )
        exhausted: str | None = None

        def lower_bound(next_op: int, current_length: int) -> int:
            bound = current_length
            for j in range(next_op, n):
                earliest = 0
                for pred in graph.predecessors(j):
                    if pred < n and pred in location:
                        pred_mi, _ = location[pred]
                        pair = kinds[(pred, j)]
                        earliest = max(
                            earliest,
                            pred_mi + 1 if OUTPUT in pair else pred_mi,
                        )
                bound = max(bound, earliest + chain[j])
            return bound

        def search(op_index: int) -> None:
            nonlocal best, best_length, nodes_left, exhausted
            if nodes_left <= 0:
                exhausted = exhausted or "nodes"
                return
            if (
                deadline is not None
                and (nodes_left & 1023) == 0
                and time.monotonic() > deadline
            ):
                # Poison the node budget so the whole tree unwinds.
                nodes_left = 0
                exhausted = "deadline"
                return
            nodes_left -= 1
            if op_index == n:
                if len(state) < best_length:
                    best_length = len(state)
                    best = [list(mi.placed) for mi in state]
                return
            if lower_bound(op_index, len(state)) >= best_length:
                return
            op = block.ops[op_index]
            lower = 0
            for pred in graph.predecessors(op_index):
                if pred >= n:
                    continue
                pred_mi, _ = location[pred]
                pair = kinds[(pred, op_index)]
                lower = max(lower, pred_mi + 1 if OUTPUT in pair else pred_mi)
            # Try existing instructions first (cheapest), then a new one.
            upper = min(len(state), best_length - 1)
            for mi_index in range(lower, upper + 1):
                if mi_index == len(state):
                    state.append(MicroInstruction())
                instruction = state[mi_index]
                positions = {
                    i: pos for i, (mi, pos) in location.items() if mi == mi_index
                }
                relations = relations_for(op_index, positions, kinds)
                for placed in model.placements(op):
                    if model.can_add(instruction, placed, relations):
                        instruction.placed.append(placed)
                        location[op_index] = (
                            mi_index,
                            len(instruction.placed) - 1,
                        )
                        search(op_index + 1)
                        del location[op_index]
                        instruction.placed.pop()
                if mi_index == len(state) - 1 and not state[-1].placed:
                    state.pop()

        search(0)
        if exhausted is not None:
            self.tracer.warning(
                "compose.budget_exhausted",
                algorithm=self.name,
                block=block.label,
                reason=exhausted,
                nodes_explored=self.node_budget - nodes_left,
                fallback="list-schedule incumbent",
            )
        result = [MicroInstruction(placed=placed) for placed in best]
        emit_block_stats(
            self.tracer, self.name, block, result, model,
            seed_words=len(seed),
            nodes_explored=self.node_budget - nodes_left,
            proved_minimal=nodes_left > 0,
        )
        return result

    @staticmethod
    def _chain_lengths(graph) -> list[int]:
        """Unit-weight critical-path lengths (in microinstructions)."""
        n = graph.n_ops
        lengths = [1] * n
        for node in range(n - 1, -1, -1):
            below = [
                lengths[successor]
                for successor in graph.successors(node)
                if successor < n
            ]
            lengths[node] = 1 + (max(below) if below else 0)
        return lengths
