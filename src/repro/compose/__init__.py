"""Microinstruction composition — "compaction" (survey substrate S4).

Four algorithms over one conflict model:

* :class:`SequentialComposer` — one op per word (baseline / unoptimized)
* :class:`LinearComposer` — first-come-first-served packing [18]
* :class:`ListScheduler` — critical-path list scheduling [22]
* :class:`LevelComposer` / :func:`maximal_parallel_sets` — maximal
  parallelism analysis [3]
* :class:`BranchBoundComposer` — minimal composition by search [21]
"""

from repro.compose.base import (
    ComposedBlock,
    ComposedProgram,
    Composer,
    MicroInstruction,
    PlacedOp,
    compose_program,
)
from repro.compose.branch_bound import BranchBoundComposer
from repro.compose.conflicts import ConflictModel
from repro.compose.dasgupta_tartar import (
    LevelComposer,
    data_parallelism,
    maximal_parallel_sets,
)
from repro.compose.linear import LinearComposer, SequentialComposer
from repro.compose.list_schedule import ListScheduler
from repro.compose.metrics import (
    CompactionStats,
    block_stats,
    compare_composers,
    estimate_cycles,
    program_stats,
)

#: All composers, in roughly increasing quality order.
ALL_COMPOSERS = [
    SequentialComposer,
    LinearComposer,
    LevelComposer,
    ListScheduler,
    BranchBoundComposer,
]

__all__ = [
    "ALL_COMPOSERS",
    "BranchBoundComposer",
    "CompactionStats",
    "ComposedBlock",
    "ComposedProgram",
    "Composer",
    "ConflictModel",
    "LevelComposer",
    "LinearComposer",
    "ListScheduler",
    "MicroInstruction",
    "PlacedOp",
    "SequentialComposer",
    "block_stats",
    "compare_composers",
    "compose_program",
    "data_parallelism",
    "estimate_cycles",
    "maximal_parallel_sets",
    "program_stats",
]
