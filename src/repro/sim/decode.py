"""Pre-decoded execution engine (the simulator's fast path).

The interpretive :meth:`Simulator._execute_instruction` re-derives
everything about a control-store word on every execution: it groups
placed ops by phase, string-matches the micro-order name, isinstance-
tests every operand, resolves register names through the register
file, and walks the terminator's isinstance chain to sequence.  None
of that depends on machine state — only the *operand values* do — so
it can all be done once per word.

This module lowers a :class:`~repro.asm.assembler.LoadedWord` into an
:class:`ExecutionPlan`: phase-grouped tuples of *step closures* with
operand readers pre-bound (immediates inlined as constants, registers
resolved to direct slot lookups where the machine's banking allows),
semantics pre-dispatched (the hot ALU orders are inlined; the rest
pre-bind :func:`repro.sim.semantics.evaluate`), the microinstruction's
cycle count pre-computed, and the terminator compiled to a single
sequencing closure with label lookups already resolved to absolute
control-store addresses.  The hot loop then becomes "fetch plan, run
closures" — the regime VADL-style generated simulators live in.

**Fault-injection correctness.**  Plans are cached per absolute
address *and per encoded word* (:class:`PlanCache`): when a
:class:`~repro.faults.injectors.ControlStoreBitFlip` substitutes a
mutated word at fetch, its ``word`` differs from the pristine
encoding, so the cache misses and the flipped behaviour is decoded
fresh — a stale plan can never execute a bit-flipped word, and the
un-flipped plan is reused again if the injector is cycle-gated.
Campaigns therefore stay bit-accurate under the decoded engine (the
parity suite in ``tests/sim/test_decode.py`` checks this
instruction for instruction).

Exact-parity contract: a decoded run must match the interpretive run
in every observable — executed addresses, cycle accounting, register
and memory state, flags, traps raised and their order — for every
program the toolkit can assemble.  Where the interpretive path reads
state dynamically (banked register windows, the swappable
``state.memory``, the interrupt handler), the closures here do too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.asm.assembler import LoadedWord
from repro.asm.loader import ResidentProgram
from repro.errors import SimulationError
from repro.mir.block import (
    Branch,
    Call,
    Exit,
    Fallthrough,
    Jump,
    Multiway,
    Ret,
)
from repro.mir.operands import Reg
from repro.sim.semantics import condition_holds, evaluate
from repro.sim.state import StateBackend

#: A step runs one placed op against the live state.  It may append
#: pending commits to ``reg_writes`` / ``memory_ops``, update
#: ``flag_writes``, raise a :class:`~repro.errors.MicroTrap`, and
#: returns truthy iff it serviced a pending interrupt (``poll``).
Step = Callable[..., object]

#: Branch conditions compiled to a direct flag test; anything else
#: falls back to :func:`condition_holds` (and raises identically for
#: unknown conditions).
_COND_TESTS = {
    "Z": ("Z", 1), "NZ": ("Z", 0),
    "N": ("N", 1), "NN": ("N", 0),
    "C": ("C", 1), "NC": ("C", 0),
    "UF": ("UF", 1), "NUF": ("UF", 0),
}


class ExecutionPlan:
    """One control-store word, lowered for repeated execution.

    ``phases`` holds one tuple of steps per occupied phase, in phase
    order; ``cycles`` is the pre-computed microinstruction latency;
    ``sequence`` advances the microprogram counter (labels already
    resolved against the resident program the plan was decoded for).
    """

    __slots__ = ("phases", "cycles", "sequence")

    def __init__(
        self,
        phases: tuple[tuple[Step, ...], ...],
        cycles: int,
        sequence: Callable[[StateBackend], None],
    ):
        self.phases = phases
        self.cycles = cycles
        self.sequence = sequence

    def execute(self, state: StateBackend) -> bool:
        """Run all phases; same commit discipline as the interpreter:
        within a phase all reads see phase-entry state, then register
        writes commit, then memory actions, then flag updates.

        Returns True if a pending interrupt was serviced by a ``poll``.
        """
        serviced = False
        for steps in self.phases:
            reg_writes: list[tuple[str, int | None, int]] = []
            flag_writes: dict[str, int] = {}
            memory_ops: list[Callable[[], None]] = []
            for step in steps:
                if step(state, reg_writes, flag_writes, memory_ops):
                    serviced = True
            if reg_writes:
                registers = state.registers
                for target, mask, value in reg_writes:
                    if mask is None:
                        state.write_reg(target, value)
                    else:
                        registers[target] = value & mask
            for action in memory_ops:
                action()
            if flag_writes:
                state.flags.update(flag_writes)
        return serviced


@dataclass
class PlanCacheStats:
    """Lifetime counters of one :class:`PlanCache`.

    Both counters are maintained on cold paths only (a decode, a
    wholesale invalidation), so the hot fetch-plan-execute loop never
    pays for them; per-run hit counts are derived in
    :meth:`repro.sim.simulator.Simulator.run` as executed instructions
    minus decodes — under the decoded engine every executed
    microinstruction runs exactly one plan.

    Attributes:
        decodes: Plans decoded and inserted (cache misses — including
            re-decodes forced by a fault injector substituting a
            mutated word, previously invisible).
        invalidations: Wholesale :meth:`PlanCache.invalidate` calls.
    """

    decodes: int = 0
    invalidations: int = 0


class PlanCache:
    """Per-simulator plan store with bit-flip-safe keying.

    Two tiers:

    * ``_by_word`` — keyed ``(resident base, address, encoded word)``;
      always consulted, so a fault injector substituting a mutated
      word gets a fresh decode (and flipping back reuses the pristine
      plan).
    * per-resident address maps (``addr_plans``) — the direct path the
      run loop uses when no injector, trace, or recorder is attached
      and the fetched word therefore cannot differ from the stored
      one; skips the control-store fetch entirely.
    """

    __slots__ = ("_by_word", "_by_addr", "stats")

    def __init__(self) -> None:
        self._by_word: dict[tuple[int, int, int], ExecutionPlan] = {}
        self._by_addr: dict[int, dict[int, ExecutionPlan]] = {}
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        return len(self._by_word)

    def addr_plans(self, resident: ResidentProgram) -> dict[int, ExecutionPlan]:
        """The fetch-free address map for one resident program."""
        return self._by_addr.setdefault(resident.base, {})

    def lookup(
        self, resident: ResidentProgram, address: int, loaded: LoadedWord
    ) -> ExecutionPlan | None:
        return self._by_word.get((resident.base, address, loaded.word))

    def insert(
        self,
        resident: ResidentProgram,
        address: int,
        loaded: LoadedWord,
        plan: ExecutionPlan,
        *,
        direct: bool,
    ) -> None:
        """Store a plan; ``direct=True`` additionally registers it on
        the fetch-free path (only legal when no injector can substitute
        words for this simulator)."""
        self.stats.decodes += 1
        self._by_word[(resident.base, address, loaded.word)] = plan
        if direct:
            self.addr_plans(resident)[address] = plan

    def invalidate(self) -> None:
        """Drop every cached plan (e.g. after reloading the store)."""
        self.stats.invalidations += 1
        self._by_word.clear()
        self._by_addr.clear()


# ----------------------------------------------------------------------
# Operand pre-resolution
# ----------------------------------------------------------------------
def _src_reader(files, operand) -> Callable[[StateBackend], int]:
    """A reader closure for one source operand.

    Immediates become constants; plain registers become direct slot
    lookups; banked windows (and names the register file does not
    know, which must keep raising through ``read_reg``) stay dynamic.
    """
    if not isinstance(operand, Reg):
        value = operand.value
        return lambda state: value
    name = operand.name
    if files.is_window(name) or name not in files.registers:
        return lambda state: state.read_reg(name)
    return lambda state: state.registers[name]


def _dest_slot(files, name: str) -> tuple[str, int | None]:
    """Pre-resolve a destination register to ``(target, mask)``.

    ``mask is None`` routes the commit through ``state.write_reg``
    (banked windows resolve against the bank pointer *at commit time*,
    and read-only/unknown registers raise exactly as the interpreter
    does); otherwise the commit is a direct masked slot store.
    """
    if files.is_window(name) or name not in files.registers:
        return (name, None)
    register = files.registers[name]
    if register.readonly:
        return (name, None)
    return (name, register.mask)


# ----------------------------------------------------------------------
# Step factories
# ----------------------------------------------------------------------
def _step_poll(simulator) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        if state.interrupt_pending and simulator.interrupt_handler:
            simulator.interrupt_handler(state)
            state.interrupt_pending = False
            return True
        return False

    return step


def _step_read(read_addr, target, mask) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        reg_writes.append((target, mask, state.memory.read(read_addr(state))))

    return step


def _step_write(read_addr, read_data) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        address = read_addr(state)
        data = read_data(state)
        memory_ops.append(lambda a=address, d=data: state.memory.write(a, d))
        # Touch now so pagefaults surface at the op, not at commit
        # (write-allocate check) — same as the interpretive path.
        if not state.memory.is_mapped(address):
            state.memory.write(address, data)

    return step


def _step_ldscr(read_addr, target, mask) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        reg_writes.append(
            (target, mask, state.scratchpad.read(read_addr(state)))
        )

    return step


def _step_stscr(read_value, read_addr) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        value = read_value(state)
        address = read_addr(state)
        memory_ops.append(
            lambda a=address, v=value: state.scratchpad.write(a, v)
        )

    return step


def _step_setblk(read_value, pointer: str | None, mask: int | None) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        value = read_value(state)
        if pointer is None:
            raise SimulationError("setblk on unbanked machine")
        reg_writes.append((pointer, mask, value))

    return step


def _step_mov(read_src, target, mask, word_mask) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        reg_writes.append((target, mask, read_src(state) & word_mask))

    return step


def _step_add(read_a, read_b, target, mask, word_mask, sign_shift) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        total = (read_a(state) & word_mask) + (read_b(state) & word_mask)
        value = total & word_mask
        reg_writes.append((target, mask, value))
        flag_writes["Z"] = int(value == 0)
        flag_writes["N"] = (value >> sign_shift) & 1
        flag_writes["C"] = int(total > word_mask)

    return step


def _step_sub(read_a, read_b, target, mask, word_mask, sign_shift) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        total = (read_a(state) & word_mask) + ((read_b(state) ^ word_mask) & word_mask) + 1
        value = total & word_mask
        reg_writes.append((target, mask, value))
        flag_writes["Z"] = int(value == 0)
        flag_writes["N"] = (value >> sign_shift) & 1
        flag_writes["C"] = int(total > word_mask)

    return step


def _step_cmp(read_a, read_b, word_mask, sign_shift) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        total = (read_a(state) & word_mask) + ((read_b(state) ^ word_mask) & word_mask) + 1
        value = total & word_mask
        flag_writes["Z"] = int(value == 0)
        flag_writes["N"] = (value >> sign_shift) & 1
        flag_writes["C"] = int(total > word_mask)

    return step


def _step_incdec(read_a, target, mask, word_mask, sign_shift, delta) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        total = (read_a(state) & word_mask) + delta
        value = total & word_mask
        reg_writes.append((target, mask, value))
        flag_writes["Z"] = int(value == 0)
        flag_writes["N"] = (value >> sign_shift) & 1
        flag_writes["C"] = int(total > word_mask)

    return step


_LOGIC = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}


def _step_logic(fn, read_a, read_b, target, mask, word_mask, sign_shift) -> Step:
    def step(state, reg_writes, flag_writes, memory_ops):
        value = fn(read_a(state) & word_mask, read_b(state) & word_mask)
        reg_writes.append((target, mask, value))
        flag_writes["Z"] = int(value == 0)
        flag_writes["N"] = (value >> sign_shift) & 1

    return step


def _step_generic(name, readers, dest, commit, read_old, width) -> Step:
    """Fallback for ops without an inlined specialization: pre-bound
    :func:`evaluate` call with the interpreter's exact argument set."""

    def step(state, reg_writes, flag_writes, memory_ops):
        src_values = [read(state) for read in readers]
        result = evaluate(
            name,
            src_values,
            width,
            dest_old=read_old(state) if read_old is not None else 0,
            carry_in=state.flags.get("C", 0),
        )
        if result.value is not None and dest:
            reg_writes.append((commit[0], commit[1], result.value))
        if result.flags:
            flag_writes.update(result.flags)

    return step


def _decode_op(simulator, placed) -> Step | None:
    """Lower one placed op to a step closure (None for ``nop``)."""
    machine = simulator.machine
    files = machine.registers
    op = placed.op
    name = op.op
    if name == "nop":
        return None
    if name == "poll":
        return _step_poll(simulator)

    readers = tuple(_src_reader(files, src) for src in op.srcs)
    if name == "read":
        target, mask = _dest_slot(files, op.dest.name)
        return _step_read(readers[0], target, mask)
    if name == "write":
        return _step_write(readers[0], readers[1])
    if name == "ldscr":
        target, mask = _dest_slot(files, op.dest.name)
        return _step_ldscr(readers[0], target, mask)
    if name == "stscr":
        return _step_stscr(readers[0], readers[1])
    if name == "setblk":
        pointer = files.bank_pointer
        if pointer is None:
            return _step_setblk(readers[0], None, None)
        target, mask = _dest_slot(files, pointer)
        return _step_setblk(readers[0], target, mask)

    word_mask = machine.mask()
    sign_shift = machine.word_size - 1
    # Inline specializations are only taken when the destination is a
    # plain writable register (direct slot commit); anything trickier
    # — windows, read-only, missing dest — takes the generic path so
    # error behaviour stays identical to the interpreter.
    if op.dest is not None:
        target, mask = _dest_slot(files, op.dest.name)
        if mask is not None:
            if name in ("mov", "movi"):
                return _step_mov(readers[0], target, mask, word_mask)
            if name == "add":
                return _step_add(readers[0], readers[1], target, mask,
                                 word_mask, sign_shift)
            if name == "sub":
                return _step_sub(readers[0], readers[1], target, mask,
                                 word_mask, sign_shift)
            if name == "inc":
                return _step_incdec(readers[0], target, mask, word_mask,
                                    sign_shift, 1)
            if name == "dec":
                return _step_incdec(readers[0], target, mask, word_mask,
                                    sign_shift, word_mask)
            if name in _LOGIC:
                return _step_logic(_LOGIC[name], readers[0], readers[1],
                                   target, mask, word_mask, sign_shift)
    if name == "cmp":
        return _step_cmp(readers[0], readers[1], word_mask, sign_shift)

    if op.dest is not None:
        commit = _dest_slot(files, op.dest.name)
        read_old = _src_reader(files, op.dest)
    else:
        commit = ("", None)
        read_old = None
    return _step_generic(
        name, readers, op.dest is not None, commit, read_old,
        machine.word_size,
    )


# ----------------------------------------------------------------------
# Terminator pre-decoding
# ----------------------------------------------------------------------
def _decode_terminator(
    simulator, terminator, address: int, resident: ResidentProgram
) -> Callable[[StateBackend], None]:
    """Compile sequencing to one closure with absolute targets."""
    base = resident.base
    labels = resident.program.labels

    def resolve(label: str) -> int:
        return base + labels[label]

    if terminator is None:
        successor = address + 1

        def seq_next(state):
            state.upc = successor

        return seq_next

    if isinstance(terminator, (Fallthrough, Jump)):
        target = resolve(terminator.target)

        def seq_jump(state):
            state.upc = target

        return seq_jump

    if isinstance(terminator, Branch):
        taken = resolve(terminator.target)
        not_taken = resolve(terminator.otherwise)
        cond = terminator.cond
        if cond == "TRUE":
            def seq_always(state):
                state.upc = taken

            return seq_always
        test = _COND_TESTS.get(cond)
        if test is None:
            def seq_cond_generic(state):
                state.upc = (
                    taken if condition_holds(cond, state.flags) else not_taken
                )

            return seq_cond_generic
        flag, expected = test

        def seq_branch(state):
            state.upc = (
                taken if state.flags.get(flag, 0) == expected else not_taken
            )

        return seq_branch

    if isinstance(terminator, Multiway):
        read_value = _src_reader(simulator.machine.registers, terminator.reg)
        cases = tuple(
            (case.matches, resolve(case.target)) for case in terminator.cases
        )
        default = resolve(terminator.default)

        def seq_multiway(state):
            value = read_value(state)
            for matches, target in cases:
                if matches(value):
                    state.upc = target
                    return
            state.upc = default

        return seq_multiway

    if isinstance(terminator, Call):
        return_to = resolve(terminator.next)
        procedure = base + resident.program.procedures[terminator.proc]

        def seq_call(state):
            state.push_return(return_to)
            state.upc = procedure

        return seq_call

    if isinstance(terminator, Ret):
        def seq_ret(state):
            state.upc = state.pop_return()

        return seq_ret

    if isinstance(terminator, Exit):
        value = terminator.value
        if value is None:
            def seq_exit(state):
                state.halted = True

            return seq_exit
        value_reg = value.name

        def seq_exit_value(state):
            state.halted = True
            state.exit_value = state.read_reg(value_reg)

        return seq_exit_value

    raise SimulationError(f"unknown terminator {terminator!r}")


# ----------------------------------------------------------------------
def terminator_metadata(
    terminator, address: int, resident: ResidentProgram
) -> dict:
    """Static sequencing facts about one word's terminator.

    Plan metadata for the trace stitcher (:mod:`repro.sim.trace`):
    instead of re-deriving label resolution, the stitcher compiles its
    guards from this, with targets resolved to absolute control-store
    addresses exactly as :func:`_decode_terminator` resolves them —
    one source of truth for sequencing.
    """
    base = resident.base
    labels = resident.program.labels
    if terminator is None:
        return {"kind": "jump", "target": address + 1}
    if isinstance(terminator, (Fallthrough, Jump)):
        return {"kind": "jump", "target": base + labels[terminator.target]}
    if isinstance(terminator, Branch):
        return {
            "kind": "branch",
            "cond": terminator.cond,
            "taken": base + labels[terminator.target],
            "not_taken": base + labels[terminator.otherwise],
        }
    if isinstance(terminator, Multiway):
        return {"kind": "multiway"}
    if isinstance(terminator, Call):
        return {
            "kind": "call",
            "target": base + resident.program.procedures[terminator.proc],
            "return_to": base + labels[terminator.next],
        }
    if isinstance(terminator, Ret):
        return {"kind": "ret"}
    if isinstance(terminator, Exit):
        return {"kind": "exit"}
    raise SimulationError(f"unknown terminator {terminator!r}")


# ----------------------------------------------------------------------
def decode_word(
    simulator, loaded: LoadedWord, resident: ResidentProgram, address: int
) -> ExecutionPlan:
    """Lower one loaded control-store word into an execution plan."""
    machine = simulator.machine
    instruction = loaded.instruction
    phases = []
    for group in instruction.phase_groups(machine):
        steps = tuple(
            step
            for step in (_decode_op(simulator, placed) for placed in group)
            if step is not None
        )
        if steps:
            phases.append(steps)
    return ExecutionPlan(
        phases=tuple(phases),
        cycles=instruction.cached_cycles(machine),
        sequence=_decode_terminator(
            simulator, instruction.terminator, address, resident
        ),
    )
