"""Main memory and scratchpad local store.

Main memory supports demand paging so that the survey's §2.1.5
microtrap scenario is executable: with paging enabled, touching an
unmapped page raises a :class:`~repro.errors.MicroTrap`, which the
simulator services by (re)mapping the page and *restarting the
microprogram from its entry* — exactly the semantics under which the
``incread`` double-increment bug manifests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MicroTrap, SimulationError


@dataclass
class MainMemory:
    """Word-addressed main memory with optional demand paging."""

    size: int = 65536
    page_size: int = 256
    paging_enabled: bool = False
    _words: dict[int, int] = field(default_factory=dict)
    _mapped: set[int] = field(default_factory=set)
    #: Counters for benchmark reporting.
    reads: int = 0
    writes: int = 0
    faults: int = 0

    def _check(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise SimulationError(f"memory address {address} out of range")
        if self.paging_enabled:
            page = address // self.page_size
            if page not in self._mapped:
                self.faults += 1
                raise MicroTrap("pagefault", f"page {page} (address {address})")

    def read(self, address: int) -> int:
        self._check(address)
        self.reads += 1
        return self._words.get(address, 0)

    def write(self, address: int, value: int) -> None:
        self._check(address)
        self.writes += 1
        self._words[address] = value

    # -- paging control (used by trap services and tests) ---------------
    def map_page(self, page: int) -> None:
        self._mapped.add(page)

    def unmap_page(self, page: int) -> None:
        self._mapped.discard(page)

    def map_address(self, address: int) -> None:
        self.map_page(address // self.page_size)

    def is_mapped(self, address: int) -> bool:
        return not self.paging_enabled or (address // self.page_size) in self._mapped

    # -- bulk helpers -----------------------------------------------------
    def load_words(self, base: int, values: list[int]) -> None:
        """Poke a block of words, bypassing paging (loader-style)."""
        for offset, value in enumerate(values):
            if not 0 <= base + offset < self.size:
                raise SimulationError("load_words out of range")
            self._words[base + offset] = value

    def dump_words(self, base: int, count: int) -> list[int]:
        """Peek a block of words, bypassing paging."""
        return [self._words.get(base + offset, 0) for offset in range(count)]


@dataclass
class Scratchpad:
    """Small, fast, always-mapped local store (spill target)."""

    size: int = 256
    _words: dict[int, int] = field(default_factory=dict)
    reads: int = 0
    writes: int = 0

    def read(self, address: int) -> int:
        if not 0 <= address < self.size:
            raise SimulationError(f"scratchpad address {address} out of range")
        self.reads += 1
        return self._words.get(address, 0)

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < self.size:
            raise SimulationError(f"scratchpad address {address} out of range")
        self.writes += 1
        self._words[address] = value
