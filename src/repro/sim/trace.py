"""Profile-guided trace JIT for the decoded engine (survey substrate S22).

The decoded engine (:mod:`repro.sim.decode`) still dispatches one
pre-decoded word at a time: every microinstruction pays the run
loop's bookkeeping — limit checks, plan lookup, the per-phase commit
machinery — even when control sits in a tight loop executing the same
few words thousands of times.  The workloads that dominate the
survey's reconstructions are exactly such loops (emulator dispatch,
block moves, counting scans), so the next order of magnitude comes
from compiling *traces*: record the linear path a hot loop actually
takes, stitch it into one Python function with operand slots
pre-resolved and phase commits unrolled, ``compile()`` it once, and
run whole loop iterations per dispatch.

Mechanics (a NET-style trace JIT):

* **Detection** — the run loop reports back edges (a sequencing step
  whose target does not advance past the current address); a head
  crossing ``trace_hot_threshold`` arms recording.  A saved
  :class:`~repro.obs.timeline.SimProfile` can seed the same heat
  counters up front (:meth:`TraceJIT.seed_from_profile`) — the
  explicitly profile-guided path, built on
  :func:`repro.obs.hotpath.analyze_profile`'s loop detection.
* **Recording** — subsequent executed MIs are captured (address,
  loaded word, actual successor) until the path returns to the head;
  traps, ``EXIT`` and over-long paths abort the attempt.
* **Stitching** — :func:`stitch_trace` generates Python source: one
  ``while True`` loop whose body is the whole recorded path with
  register reads lowered to direct dict access, the phase commit
  discipline unrolled statically, and flags assigned last-writer-
  wins.  Semantics mirror :class:`~repro.sim.decode.ExecutionPlan`
  exactly — including the cases that stay dynamic there (banked
  windows, generic ``evaluate`` ops) — so parity with the decoded
  engine is structural, not incidental.
* **Guards** — every recorded branch direction, multiway target and
  return address is checked; a mismatch side-exits with the exact
  architectural state the decoded engine would have at that point
  (cycles flushed from static prefix sums, ``upc`` set to the road
  not recorded).  A trap inside a trace flushes the same way and
  re-raises, so §2.1.5 restart semantics, fault classification and
  ``max_traps`` accounting observe nothing unusual.  A cycle-budget
  guard refuses any iteration that could overrun ``max_cycles``,
  keeping the run loop's limit error byte-identical.
* **Invalidation** — the JIT only engages when no fault injector is
  attached (an injector can substitute mutated control-store words
  at fetch, so the traced engine then degrades to the plain decoded
  path, plans and all); :meth:`TraceJIT.invalidate` additionally
  drops every trace — ``PlanCache.invalidate``-style — and is fired
  automatically when the simulator's control store changes identity.
* **Disk tier** — optionally (``Simulator.trace_dir=``), stitched
  sources persist content-addressed like :mod:`repro.cache`'s
  compile cache — SHA-256 over the machine fingerprint and every
  covered ``(address, word, successor)`` triple — through the same
  crash-atomic write path (:func:`repro.cache.write_atomic`), so a
  later process skips codegen (never compilation: host code objects
  are not portable artifacts).

Not traced (exact decoded fallback): runs with a fault injector, a
text trace sink, or periodic interrupt generation
(``interrupt_every``) — all three need per-MI visibility.  A
:class:`~repro.obs.timeline.TraceRecorder` *is* supported: trace-
executed MIs are replayed into it afterwards with exact cycle
stamps, so profiles and difftest observations match the decoded
engine bit for bit.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.asm.loader import ResidentProgram
from repro.cache import machine_fingerprint, write_atomic
from repro.errors import MicroTrap
from repro.mir.block import Multiway
from repro.mir.operands import Reg
from repro.obs.events import PH_INSTANT, TRACK_SIM, Event
from repro.sim.decode import (
    _COND_TESTS,
    _decode_terminator,
    _dest_slot,
    terminator_metadata,
)
from repro.sim.semantics import condition_holds, evaluate

#: Bump when the generated-source layout changes incompatibly, so a
#: stale disk tier from an older checkout can never resurrect code
#: with different semantics.
TRACE_FORMAT = 1

#: XOR mask stitched into every inlined ALU result when nonzero.
#: This is the difftest harness's planted-bug hook (`--self-check`):
#: setting it to 1 miscompiles every trace by exactly one bit, which
#: the ``traced`` oracle axis must catch.  Normal operation: 0, and
#: the stitcher emits the plain expression (zero runtime cost).
PLANT_RESULT_XOR = 0

#: Back-edge executions of one loop head before recording arms.
DEFAULT_HOT_THRESHOLD = 8
#: Longest recordable path, in microinstructions; loops bigger than
#: this (typically an outer loop swallowing an inner one) are
#: blacklisted — their inner loops trace on their own.
DEFAULT_MAX_TRACE_LEN = 64

_LOGIC_SYMBOLS = {"and": "&", "or": "|", "xor": "^"}
#: Ops the stitcher inlines when the destination is a plain writable
#: register — the same predicate :func:`repro.sim.decode._decode_op`
#: uses for its step specializations.
_ALU_OPS = ("add", "sub", "inc", "dec", "and", "or", "xor")


class TraceUnsupported(Exception):
    """Raised at stitch time for paths the JIT refuses to compile
    (the head is blacklisted and execution stays on the decoded
    path — never an error surfaced to the run)."""


@dataclass
class TraceStats:
    """Lifetime counters of one :class:`TraceJIT`.

    Mirrors the :class:`~repro.sim.decode.PlanCacheStats` philosophy:
    maintained off the hot path (a compile, an exit, an abort), with
    per-run deltas derived in ``Simulator.run``.
    """

    #: Traces stitched and installed (cache misses, plan-cache style).
    compiles: int = 0
    #: Trace dispatches that executed at least one microinstruction.
    enters: int = 0
    #: Microinstructions executed inside traces.
    traced_mis: int = 0
    #: Guard bailouts: trap exits, zero-progress dispatches, and
    #: mid-body side exits (a full-iteration loop exit is a normal
    #: return, not a bailout).
    bailouts: int = 0
    #: Wholesale :meth:`TraceJIT.invalidate` calls.
    invalidations: int = 0
    #: Recordings abandoned (trap/EXIT mid-path, over-long path,
    #: unsupported construct).
    aborts: int = 0
    #: Stitched sources served from the disk tier.
    disk_hits: int = 0
    #: Disk-tier entries that failed to load and were evicted.
    corrupt: int = 0

    def snapshot(self) -> tuple[int, int, int, int]:
        return (self.compiles, self.enters, self.bailouts,
                self.invalidations)


class _TraceExit:
    """Mutable out-params of one generated-trace call."""

    __slots__ = ("completed", "reason")

    def __init__(self) -> None:
        self.completed = -1
        self.reason = ""


class CompiledTrace:
    """One stitched loop: the compiled function plus replay metadata."""

    __slots__ = ("head", "path", "loadeds", "mi_cycles", "iter_cycles",
                 "n", "fn", "source", "key")

    def __init__(self, head, path, loadeds, mi_cycles, iter_cycles,
                 n, fn, source, key):
        self.head = head
        self.path = path
        self.loadeds = loadeds
        self.mi_cycles = mi_cycles
        self.iter_cycles = iter_cycles
        self.n = n
        self.fn = fn
        self.source = source
        self.key = key


class _Recording:
    __slots__ = ("head", "resident", "elements")

    def __init__(self, head: int, resident: ResidentProgram) -> None:
        self.head = head
        self.resident = resident
        #: ``(address, loaded, successor)`` per executed MI.
        self.elements: list[tuple] = []


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------
class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self._depth = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self._depth + line if line else "")

    def indent(self) -> None:
        self._depth += 1

    def dedent(self) -> None:
        self._depth -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _src_expr(files, operand) -> str:
    """The read expression for one source operand — the codegen twin
    of :func:`repro.sim.decode._src_reader`: immediates become
    literals, plain registers direct dict lookups, banked windows and
    unknown names stay dynamic through ``read_reg``."""
    if not isinstance(operand, Reg):
        return repr(operand.value)
    name = operand.name
    if files.is_window(name) or name not in files.registers:
        return f"state.read_reg({name!r})"
    return f"regs[{name!r}]"


def _planted(expr: str) -> str:
    if PLANT_RESULT_XOR:
        return f"(({expr}) ^ {PLANT_RESULT_XOR})"
    return expr


def _op_mode(files, op) -> str:
    """``skip`` | ``static`` | ``generic`` — with the same inlining
    predicate as ``_decode_op`` (ALU inlines only commit to plain
    writable registers; everything trickier stays on the dynamic
    ``evaluate`` path so error behaviour matches)."""
    name = op.op
    if name in ("nop", "poll"):
        return "skip"
    if name in ("read", "write", "ldscr", "stscr", "cmp"):
        return "static"
    if name == "setblk":
        if files.bank_pointer is None:
            raise TraceUnsupported("setblk on unbanked machine")
        return "static"
    if name in ("mov", "movi") or name in _ALU_OPS:
        if op.dest is not None:
            mask = _dest_slot(files, op.dest.name)[1]
            if mask is not None:
                return "static"
    return "generic"


class _Stitcher:
    """Generates the superinstruction source for one recorded path."""

    def __init__(self, simulator, resident, elements):
        self.machine = simulator.machine
        self.files = self.machine.registers
        self.resident = resident
        self.elements = elements
        self.n = len(elements)
        self.mi_cycles = [
            loaded.instruction.cached_cycles(self.machine)
            for _, loaded, _ in elements
        ]
        self.iter_cycles = sum(self.mi_cycles)
        #: pre[k]: cycles of the iteration's MIs before element k.
        self.pre = [0] * self.n
        for k in range(1, self.n):
            self.pre[k] = self.pre[k - 1] + self.mi_cycles[k - 1]
        self.head = elements[0][0]
        self.em = _Emitter()
        self._uid = 0

    def _tmp(self) -> str:
        self._uid += 1
        return f"_t{self._uid}"

    # ------------------------------------------------------------------
    def stitch(self) -> str:
        if self.iter_cycles <= 0:
            raise TraceUnsupported("zero-cycle loop body")
        em = self.em
        em.emit(f"# trace @ {self.head:04d}, {self.n} MIs, "
                f"{self.iter_cycles} cycles/iteration")
        em.emit("def run_trace(state, rt, ceiling):")
        em.indent()
        em.emit("regs = state.registers")
        em.emit("flags = state.flags")
        em.emit("memory = state.memory")
        em.emit("scratch = state.scratchpad")
        em.emit("iters = 0")
        em.emit("_k = 0")
        em.emit("cycles0 = state.cycles")
        em.emit("try:")
        em.indent()
        em.emit("while True:")
        em.indent()
        # Budget guard: refuse any iteration whose worst in-iteration
        # prefix would cross the run's cycle ceiling; the decoded loop
        # then replays the tail one MI at a time and raises the limit
        # error at the identical instruction.
        em.emit(f"if cycles0 + iters * {self.iter_cycles} + "
                f"{self.pre[self.n - 1]} > ceiling:")
        em.indent()
        em.emit(f"state.upc = {self.head}")
        em.emit(f"state.cycles += iters * {self.iter_cycles}")
        em.emit("rt.reason = 'budget'")
        em.emit(f"return iters * {self.n}")
        em.dedent()
        for k, element in enumerate(self.elements):
            self._emit_mi(k, element)
        em.emit("iters += 1")
        em.dedent()
        em.dedent()
        # Trap (or any error) mid-iteration: flush the cycles of the
        # completed MIs, point upc at the faulting word (the run
        # loop's trap bookkeeping reads it), report the completed MI
        # count, and let the run loop's handler take over.
        em.emit("except BaseException:")
        em.indent()
        em.emit(f"state.cycles += iters * {self.iter_cycles} + _PRE[_k]")
        em.emit("state.upc = _ADDR[_k]")
        em.emit(f"rt.completed = iters * {self.n} + _k")
        em.emit("raise")
        em.dedent()
        em.dedent()
        return em.source()

    # ------------------------------------------------------------------
    def _emit_mi(self, k: int, element) -> None:
        address, loaded, successor = element
        em = self.em
        text = str(loaded.instruction).replace("\n", " ")[:72]
        em.emit(f"_k = {k}")
        em.emit(f"# {address:04d}: {text}")
        for group in loaded.instruction.phase_groups(self.machine):
            modes = [_op_mode(self.files, placed.op) for placed in group]
            live = [
                placed for placed, mode in zip(group, modes)
                if mode != "skip"
            ]
            if not live:
                continue
            if "generic" in modes:
                self._emit_phase_dynamic(live)
            else:
                self._emit_phase_static(live)
        self._emit_terminator(k, loaded.instruction.terminator,
                              address, successor)

    # -- static phase: temps at step time, unrolled commits ------------
    def _emit_phase_static(self, steps) -> None:
        em = self.em
        word_mask = self.machine.mask()
        sign_shift = self.machine.word_size - 1
        reg_commits: list[tuple[str, int | None, str, bool]] = []
        mem_commits: list[str] = []
        flag_exprs: dict[str, str] = {}
        for placed in steps:
            op = placed.op
            name = op.op
            srcs = [_src_expr(self.files, s) for s in op.srcs]
            if name == "read":
                target, mask = _dest_slot(self.files, op.dest.name)
                t = self._tmp()
                em.emit(f"{t} = memory.read({srcs[0]})")
                reg_commits.append((target, mask, t, False))
            elif name == "write":
                ta, td = self._tmp(), self._tmp()
                em.emit(f"{ta} = {srcs[0]}")
                em.emit(f"{td} = {srcs[1]}")
                # Touch now so pagefaults surface at the op, not at
                # commit — same write-allocate check as the plan step.
                em.emit(f"if not memory.is_mapped({ta}):")
                em.indent()
                em.emit(f"memory.write({ta}, {td})")
                em.dedent()
                mem_commits.append(f"memory.write({ta}, {td})")
            elif name == "ldscr":
                target, mask = _dest_slot(self.files, op.dest.name)
                t = self._tmp()
                em.emit(f"{t} = scratch.read({srcs[0]})")
                reg_commits.append((target, mask, t, False))
            elif name == "stscr":
                tv, ta = self._tmp(), self._tmp()
                em.emit(f"{tv} = {srcs[0]}")
                em.emit(f"{ta} = {srcs[1]}")
                mem_commits.append(f"scratch.write({ta}, {tv})")
            elif name == "setblk":
                target, mask = _dest_slot(
                    self.files, self.files.bank_pointer
                )
                t = self._tmp()
                em.emit(f"{t} = {srcs[0]}")
                reg_commits.append((target, mask, t, False))
            elif name in ("mov", "movi"):
                target, mask = _dest_slot(self.files, op.dest.name)
                t = self._tmp()
                em.emit(f"{t} = ({srcs[0]}) & {word_mask}")
                reg_commits.append((target, mask, t, False))
            elif name in ("add", "sub", "inc", "dec", "cmp"):
                t1, t2 = self._tmp(), self._tmp()
                if name == "add":
                    em.emit(f"{t1} = (({srcs[0]}) & {word_mask}) + "
                            f"(({srcs[1]}) & {word_mask})")
                elif name in ("sub", "cmp"):
                    em.emit(f"{t1} = (({srcs[0]}) & {word_mask}) + "
                            f"((({srcs[1]}) ^ {word_mask}) & {word_mask})"
                            f" + 1")
                elif name == "inc":
                    em.emit(f"{t1} = (({srcs[0]}) & {word_mask}) + 1")
                else:  # dec
                    em.emit(f"{t1} = (({srcs[0]}) & {word_mask}) + "
                            f"{word_mask}")
                em.emit(f"{t2} = {t1} & {word_mask}")
                if name != "cmp":
                    target, mask = _dest_slot(self.files, op.dest.name)
                    reg_commits.append((target, mask, t2, True))
                flag_exprs["Z"] = f"1 if {t2} == 0 else 0"
                flag_exprs["N"] = f"({t2} >> {sign_shift}) & 1"
                flag_exprs["C"] = f"1 if {t1} > {word_mask} else 0"
            else:  # and / or / xor
                sym = _LOGIC_SYMBOLS[name]
                target, mask = _dest_slot(self.files, op.dest.name)
                t = self._tmp()
                em.emit(f"{t} = (({srcs[0]}) & {word_mask}) {sym} "
                        f"(({srcs[1]}) & {word_mask})")
                reg_commits.append((target, mask, t, True))
                flag_exprs["Z"] = f"1 if {t} == 0 else 0"
                flag_exprs["N"] = f"({t} >> {sign_shift}) & 1"
        # Commit discipline, unrolled: register writes in step order,
        # then memory actions, then last-writer-wins flag stores.
        for target, mask, tmp, alu in reg_commits:
            value = _planted(tmp) if alu else tmp
            if mask is None:
                em.emit(f"state.write_reg({target!r}, {value})")
            else:
                em.emit(f"regs[{target!r}] = {value} & {mask}")
        for line in mem_commits:
            em.emit(line)
        for flag, expr in flag_exprs.items():
            em.emit(f"flags[{flag!r}] = {expr}")

    # -- dynamic phase: the plan's commit lists, generated inline ------
    def _emit_phase_dynamic(self, steps) -> None:
        em = self.em
        word_mask = self.machine.mask()
        sign_shift = self.machine.word_size - 1
        width = self.machine.word_size
        em.emit("_rw = []")
        em.emit("_fw = {}")
        em.emit("_mo = []")
        for placed in steps:
            op = placed.op
            name = op.op
            srcs = [_src_expr(self.files, s) for s in op.srcs]
            if name == "read":
                target, mask = _dest_slot(self.files, op.dest.name)
                em.emit(f"_rw.append(({target!r}, {mask!r}, "
                        f"memory.read({srcs[0]})))")
            elif name == "write":
                ta, td = self._tmp(), self._tmp()
                em.emit(f"{ta} = {srcs[0]}")
                em.emit(f"{td} = {srcs[1]}")
                em.emit(f"_mo.append(({ta}, {td}, 0))")
                em.emit(f"if not memory.is_mapped({ta}):")
                em.indent()
                em.emit(f"memory.write({ta}, {td})")
                em.dedent()
            elif name == "ldscr":
                target, mask = _dest_slot(self.files, op.dest.name)
                em.emit(f"_rw.append(({target!r}, {mask!r}, "
                        f"scratch.read({srcs[0]})))")
            elif name == "stscr":
                tv, ta = self._tmp(), self._tmp()
                em.emit(f"{tv} = {srcs[0]}")
                em.emit(f"{ta} = {srcs[1]}")
                em.emit(f"_mo.append(({ta}, {tv}, 1))")
            elif name == "setblk":
                target, mask = _dest_slot(
                    self.files, self.files.bank_pointer
                )
                em.emit(f"_rw.append(({target!r}, {mask!r}, {srcs[0]}))")
            elif _op_mode(self.files, op) == "static":
                # Inline-able ALU/mov/cmp inside a mixed phase: same
                # value expressions, commits appended plan-style.
                t1, t2 = self._tmp(), self._tmp()
                if name in ("mov", "movi"):
                    target, mask = _dest_slot(self.files, op.dest.name)
                    em.emit(f"{t2} = ({srcs[0]}) & {word_mask}")
                    em.emit(f"_rw.append(({target!r}, {mask!r}, {t2}))")
                    continue
                if name == "add":
                    em.emit(f"{t1} = (({srcs[0]}) & {word_mask}) + "
                            f"(({srcs[1]}) & {word_mask})")
                elif name in ("sub", "cmp"):
                    em.emit(f"{t1} = (({srcs[0]}) & {word_mask}) + "
                            f"((({srcs[1]}) ^ {word_mask}) & {word_mask})"
                            f" + 1")
                elif name == "inc":
                    em.emit(f"{t1} = (({srcs[0]}) & {word_mask}) + 1")
                elif name == "dec":
                    em.emit(f"{t1} = (({srcs[0]}) & {word_mask}) + "
                            f"{word_mask}")
                else:  # and / or / xor
                    sym = _LOGIC_SYMBOLS[name]
                    em.emit(f"{t1} = (({srcs[0]}) & {word_mask}) {sym} "
                            f"(({srcs[1]}) & {word_mask})")
                if name in _LOGIC_SYMBOLS:
                    target, mask = _dest_slot(self.files, op.dest.name)
                    em.emit(f"_rw.append(({target!r}, {mask!r}, "
                            f"{_planted(t1)}))")
                    em.emit(f"_fw['Z'] = 1 if {t1} == 0 else 0")
                    em.emit(f"_fw['N'] = ({t1} >> {sign_shift}) & 1")
                else:
                    em.emit(f"{t2} = {t1} & {word_mask}")
                    if name != "cmp":
                        target, mask = _dest_slot(
                            self.files, op.dest.name
                        )
                        em.emit(f"_rw.append(({target!r}, {mask!r}, "
                                f"{_planted(t2)}))")
                    em.emit(f"_fw['Z'] = 1 if {t2} == 0 else 0")
                    em.emit(f"_fw['N'] = ({t2} >> {sign_shift}) & 1")
                    em.emit(f"_fw['C'] = 1 if {t1} > {word_mask} else 0")
            else:
                # Generic evaluate fallback — the interpreter's exact
                # argument set, pre-bound at stitch time.
                tr = self._tmp()
                dest_old = (
                    _src_expr(self.files, op.dest)
                    if op.dest is not None else "0"
                )
                em.emit(f"{tr} = evaluate({name!r}, [{', '.join(srcs)}], "
                        f"{width}, dest_old={dest_old}, "
                        f"carry_in=flags.get('C', 0))")
                if op.dest is not None:
                    target, mask = _dest_slot(self.files, op.dest.name)
                    em.emit(f"if {tr}.value is not None:")
                    em.indent()
                    em.emit(f"_rw.append(({target!r}, {mask!r}, "
                            f"{tr}.value))")
                    em.dedent()
                em.emit(f"if {tr}.flags:")
                em.indent()
                em.emit(f"_fw.update({tr}.flags)")
                em.dedent()
        em.emit("for _ct, _cm, _cv in _rw:")
        em.indent()
        em.emit("if _cm is None:")
        em.indent()
        em.emit("state.write_reg(_ct, _cv)")
        em.dedent()
        em.emit("else:")
        em.indent()
        em.emit("regs[_ct] = _cv & _cm")
        em.dedent()
        em.dedent()
        em.emit("for _ca, _cb, _cs in _mo:")
        em.indent()
        em.emit("if _cs:")
        em.indent()
        em.emit("scratch.write(_ca, _cb)")
        em.dedent()
        em.emit("else:")
        em.indent()
        em.emit("memory.write(_ca, _cb)")
        em.dedent()
        em.dedent()
        em.emit("if _fw:")
        em.indent()
        em.emit("flags.update(_fw)")
        em.dedent()

    # -- sequencing guards ---------------------------------------------
    def _emit_exit(self, k: int, reason: str, upc: int | str | None
                   ) -> None:
        em = self.em
        if upc is not None:
            em.emit(f"state.upc = {upc}")
        em.emit(f"state.cycles += iters * {self.iter_cycles} + "
                f"{self.pre[k] + self.mi_cycles[k]}")
        em.emit(f"rt.reason = {reason!r}")
        em.emit(f"return iters * {self.n} + {k + 1}")

    def _emit_terminator(self, k: int, terminator, address: int,
                         successor: int) -> None:
        em = self.em
        meta = terminator_metadata(terminator, address, self.resident)
        kind = meta["kind"]
        if kind == "jump":
            if meta["target"] != successor:
                raise TraceUnsupported("recorded successor mismatch")
            return
        if kind == "call":
            if meta["target"] != successor:
                raise TraceUnsupported("recorded successor mismatch")
            em.emit(f"state.push_return({meta['return_to']})")
            return
        if kind == "branch":
            cond = meta["cond"]
            taken, not_taken = meta["taken"], meta["not_taken"]
            if cond == "TRUE":
                if taken != successor:
                    raise TraceUnsupported("recorded successor mismatch")
                return
            test = _COND_TESTS.get(cond)
            if test is not None and taken == not_taken:
                if taken != successor:
                    raise TraceUnsupported("recorded successor mismatch")
                return
            if test is None:
                # Unknown conditions must keep raising through
                # condition_holds, exactly like the decoded closure.
                em.emit(f"_c = condition_holds({cond!r}, flags)")
            else:
                em.emit(f"_c = flags.get({test[0]!r}, 0) == {test[1]}")
            if taken == not_taken:
                if taken != successor:
                    raise TraceUnsupported("recorded successor mismatch")
                return
            if successor == taken:
                em.emit("if not _c:")
                other = not_taken
            elif successor == not_taken:
                em.emit("if _c:")
                other = taken
            else:
                raise TraceUnsupported("successor matches neither arm")
            em.indent()
            self._emit_exit(k, "branch", other)
            em.dedent()
            return
        if kind == "ret":
            em.emit("_r = state.pop_return()")
            em.emit(f"if _r != {successor}:")
            em.indent()
            self._emit_exit(k, "ret", "_r")
            em.dedent()
            return
        if kind == "multiway":
            em.emit(f"_seq{k}(state)")
            em.emit(f"if state.upc != {successor}:")
            em.indent()
            self._emit_exit(k, "multiway", None)
            em.dedent()
            return
        raise TraceUnsupported(f"terminator kind {kind!r} not traceable")


def stitch_trace(simulator, resident: ResidentProgram, elements) -> str:
    """Generate the superinstruction source for one recorded path."""
    return _Stitcher(simulator, resident, elements).stitch()


def build_namespace(simulator, resident: ResidentProgram,
                    elements) -> dict:
    """The globals a stitched source compiles against: shared
    semantics helpers, the trap-flush prefix tables, and one
    pre-decoded sequencer closure per multiway element (rebuilt from
    live words, which is what makes disk-tier sources reloadable)."""
    machine = simulator.machine
    pre = 0
    pres, addrs = [], []
    ns = {
        "evaluate": evaluate,
        "condition_holds": condition_holds,
        "MicroTrap": MicroTrap,
    }
    for k, (address, loaded, _) in enumerate(elements):
        addrs.append(address)
        pres.append(pre)
        pre += loaded.instruction.cached_cycles(machine)
        terminator = loaded.instruction.terminator
        if isinstance(terminator, Multiway):
            ns[f"_seq{k}"] = _decode_terminator(
                simulator, terminator, address, resident
            )
    ns["_PRE"] = tuple(pres)
    ns["_ADDR"] = tuple(addrs)
    return ns


def trace_key(fingerprint: str, elements) -> str:
    """Content address of one trace: machine fingerprint plus every
    covered ``(address, word, successor)`` — any covered-word
    mutation keys a different entry, ``PlanCache``-style."""
    digest = hashlib.sha256()
    digest.update(
        f"v{TRACE_FORMAT}\x1fp{PLANT_RESULT_XOR}\x1f{fingerprint}".encode()
    )
    for address, loaded, successor in elements:
        digest.update(f"\x1f{address}:{loaded.word}:{successor}".encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
class TraceJIT:
    """Per-simulator trace store: detection, recording, dispatch.

    Owned lazily by :class:`~repro.sim.simulator.Simulator` when
    ``engine="traced"`` and no per-MI hook (injector, trace sink,
    ``interrupt_every``) forbids skipping ahead.
    """

    def __init__(self, simulator) -> None:
        self.sim = simulator
        self.hot_threshold = max(1, simulator.trace_hot_threshold)
        self.max_trace_len = DEFAULT_MAX_TRACE_LEN
        self.traces: dict[int, CompiledTrace] = {}
        self.heat: dict[int, int] = {}
        self.blacklist: set[int] = set()
        self.recording: _Recording | None = None
        self.stats = TraceStats()
        self.store = simulator.store
        self.resident: ResidentProgram | None = None
        self.disk_dir: Path | None = None
        if simulator.trace_dir is not None:
            self.disk_dir = Path(simulator.trace_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._fingerprint: str | None = None
        self._rt = _TraceExit()
        self._pending = 0

    # ------------------------------------------------------------------
    def begin_run(self, resident: ResidentProgram) -> None:
        if self.store is not self.sim.store:
            # The control store was swapped out from under us: every
            # covered word may have mutated, so drop all traces.
            self.invalidate()
            self.store = self.sim.store
        self.resident = resident
        self.recording = None

    def invalidate(self) -> None:
        """Drop every compiled trace (and all detection state)."""
        self.stats.invalidations += 1
        self.traces.clear()
        self.heat.clear()
        self.blacklist.clear()
        self.recording = None

    def seed_from_profile(self, profile) -> list[int]:
        """Profile-guided seeding: mark a saved profile's loop heads
        as already hot, so the first back edge at each arms recording
        immediately.  Returns the seeded heads."""
        from repro.obs.hotpath import analyze_profile

        analysis = analyze_profile(profile)
        seeded = []
        for loop in analysis.loops:
            header = loop.header
            if self.heat.get(header, 0) < self.hot_threshold:
                self.heat[header] = self.hot_threshold
            seeded.append(header)
        return seeded

    # ------------------------------------------------------------------
    def note_back_edge(self, head: int) -> None:
        if head in self.traces or head in self.blacklist:
            return
        heat = self.heat.get(head, 0) + 1
        self.heat[head] = heat
        if heat >= self.hot_threshold and self.resident is not None:
            self.recording = _Recording(head, self.resident)

    def record_step(self, current: int, loaded, state) -> None:
        recording = self.recording
        if state.halted:
            self.recording = None
            self.stats.aborts += 1
            return
        if loaded is None:
            loaded = self.store.fetch(current)
        recording.elements.append((current, loaded, state.upc))
        if state.upc == recording.head:
            self.recording = None
            self._finalize(recording)
        elif len(recording.elements) > self.max_trace_len:
            self.recording = None
            self.blacklist.add(recording.head)
            self.stats.aborts += 1

    def abort_recording(self) -> None:
        """Trap or error mid-recording: abandon the attempt (the head
        stays eligible — a transient pagefault should not blacklist a
        loop that runs clean once its pages are mapped)."""
        if self.recording is not None:
            self.recording = None
            self.stats.aborts += 1

    # ------------------------------------------------------------------
    def _finalize(self, recording: _Recording) -> None:
        try:
            trace = self._build(recording)
        except TraceUnsupported:
            self.blacklist.add(recording.head)
            self.stats.aborts += 1
            return
        self.traces[recording.head] = trace
        self.heat.pop(recording.head, None)
        self.stats.compiles += 1
        self._emit_event(
            "sim.trace.compile", head=recording.head,
            mis=trace.n, cycles=trace.iter_cycles,
            key=(trace.key or "")[:12],
        )

    def _build(self, recording: _Recording) -> CompiledTrace:
        elements = recording.elements
        machine = self.sim.machine
        mi_cycles = tuple(
            loaded.instruction.cached_cycles(machine)
            for _, loaded, _ in elements
        )
        iter_cycles = sum(mi_cycles)
        if iter_cycles <= 0:
            raise TraceUnsupported("zero-cycle loop body")
        key = None
        source = None
        if self.disk_dir is not None:
            if self._fingerprint is None:
                self._fingerprint = machine_fingerprint(machine)
            key = trace_key(self._fingerprint, elements)
            source = self._disk_probe(key)
        if source is None:
            source = stitch_trace(self.sim, recording.resident, elements)
            if self.disk_dir is not None:
                write_atomic(
                    self.disk_dir / f"{key}.trace.pkl",
                    {"format": TRACE_FORMAT, "key": key,
                     "source": source},
                )
        namespace = build_namespace(
            self.sim, recording.resident, elements
        )
        code = compile(source, f"<trace@{recording.head:04d}>", "exec")
        exec(code, namespace)
        return CompiledTrace(
            head=recording.head,
            path=tuple(address for address, _, _ in elements),
            loadeds=tuple(loaded for _, loaded, _ in elements),
            mi_cycles=mi_cycles,
            iter_cycles=iter_cycles,
            n=len(elements),
            fn=namespace["run_trace"],
            source=source,
            key=key,
        )

    def _disk_probe(self, key: str) -> str | None:
        path = self.disk_dir / f"{key}.trace.pkl"
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
            if (
                entry["format"] != TRACE_FORMAT
                or entry["key"] != key
                or not isinstance(entry["source"], str)
            ):
                raise ValueError("stale trace entry")
        except Exception:
            # Same contract as the compile cache: a corrupt or stale
            # entry is a miss, and the bad file is evicted so later
            # probes do not re-fail on it.
            self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.disk_hits += 1
        return entry["source"]

    # ------------------------------------------------------------------
    def execute(self, trace: CompiledTrace, state, ceiling: int) -> int:
        """Run one compiled trace; returns microinstructions executed
        (0 when a guard refused the very first one — the caller then
        falls through to the decoded path for forward progress)."""
        stats = self.stats
        stats.enters += 1
        rt = self._rt
        rt.completed = -1
        rt.reason = ""
        self._pending = 0
        cycles_entry = state.cycles
        recorder = self.sim.recorder
        try:
            executed = trace.fn(state, rt, ceiling)
        except MicroTrap:
            executed = max(rt.completed, 0)
            self._pending = executed
            stats.traced_mis += executed
            stats.bailouts += 1
            if recorder is not None and executed:
                self._replay(trace, executed, cycles_entry, recorder)
            self._emit_event(
                "sim.trace.exit", head=trace.head,
                executed=executed, reason="trap",
            )
            raise
        stats.traced_mis += executed
        if executed == 0 or executed % trace.n:
            stats.bailouts += 1
        if recorder is not None and executed:
            self._replay(trace, executed, cycles_entry, recorder)
            self._emit_event(
                "sim.trace.exit", head=trace.head,
                executed=executed, reason=rt.reason,
            )
        return executed

    def consume_completed(self) -> int:
        """MIs the last trap-exited trace completed (once)."""
        pending, self._pending = self._pending, 0
        return pending

    def _replay(self, trace: CompiledTrace, executed: int,
                cycles_entry: int, recorder) -> None:
        """Feed trace-executed MIs to the recorder after the fact,
        with the cycle stamps the decoded loop would have used — no
        interrupt or decode can occur mid-trace, so the replayed
        stream is exact."""
        record = recorder.record_mi
        path = trace.path
        loadeds = trace.loadeds
        mi_cycles = trace.mi_cycles
        n = trace.n
        cycles = cycles_entry
        for index in range(executed):
            k = index % n
            record(path[k], loadeds[k], cycles, mi_cycles[k])
            cycles += mi_cycles[k]

    def _emit_event(self, name: str, **args) -> None:
        recorder = self.sim.recorder
        if recorder is None or not recorder.tracer.enabled:
            return
        recorder.tracer.emit(Event(
            name=name, cat="sim", ph=PH_INSTANT,
            ts=self.sim.state.cycles, track=TRACK_SIM, args=args,
        ))
