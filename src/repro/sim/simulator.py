"""Phase-accurate microarchitecture simulator (survey substrate S7).

Executes assembled microprograms from a control store.  Within one
microinstruction, operations are grouped by microcycle phase; all
operands of a phase are read against the state as it stood when the
phase began, and writes commit at phase end — so phase chaining
(S*'s ``cocycle``) and same-phase parallel semantics (reads before
writes) both behave the way the composition layer assumes.

Microtraps follow the survey's §2.1.5 model: the trap aborts the
microprogram, the service routine runs (e.g. mapping the faulted
page), *macro-visible* registers are saved and restored — i.e. they
keep their values — while microregisters revert to their values at
microprogram entry, and the program restarts from its entry point.
Interrupts are only honoured at explicit ``poll`` micro-operations,
and the time a pending interrupt waits for the next poll is recorded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.asm.loader import ControlStore, ResidentProgram
from repro.compose.base import MicroInstruction
from repro.errors import MicroTrap, SimulationError, SimulationLimitError
from repro.machine.machine import MicroArchitecture
from repro.mir.block import (
    Branch,
    Call,
    Exit,
    Fallthrough,
    Jump,
    Multiway,
    Ret,
)
from repro.mir.operands import Reg
from repro.obs.events import PH_INSTANT, TRACK_SIM, Event
from repro.obs.timeline import SimProfile, TraceRecorder
from repro.sim.decode import PlanCache, decode_word
from repro.sim.trace import TraceJIT
from repro.sim.semantics import STATEFUL_OPS, condition_holds, evaluate
from repro.sim.state import MachineState, StateBackend

#: Signature of an interrupt handler: receives the machine state.
#: Handlers are written against the :class:`StateBackend` protocol, so
#: the same handler serves scalar and (peeled) batched executions.
InterruptHandler = Callable[[StateBackend], None]
#: Signature of a trap service routine: receives state and the trap.
TrapService = Callable[[StateBackend, MicroTrap], None]


@dataclass
class RunResult:
    """Outcome of one simulated run.

    ``profile`` is populated when the simulator had a
    :class:`~repro.obs.timeline.TraceRecorder` attached; it holds the
    per-address execution counts and field utilisation behind the
    hot-spot report.

    ``plan_cache`` holds this run's pre-decoded plan-cache counters
    (``hits``/``misses``/``invalidations``) under the decoded and
    traced engines and is None under the interpretive one.  Misses
    include re-decodes forced by fault injectors substituting mutated
    words — previously invisible work.

    ``trace_cache`` holds this run's trace-JIT counters under the
    traced engine (``hits``/``misses``/``invalidations``/
    ``bailouts`` — dispatches that made progress, traces stitched,
    wholesale drops, guard bailouts) and is None otherwise.  All
    zeros when the JIT stayed disengaged (fault injector, trace
    sink or ``interrupt_every`` attached).
    """

    cycles: int
    instructions: int
    traps: int
    interrupts_serviced: int
    interrupt_wait_cycles: int
    exit_value: int | None
    profile: SimProfile | None = None
    plan_cache: dict[str, int] | None = None
    trace_cache: dict[str, int] | None = None

    def __str__(self) -> str:
        return (
            f"{self.instructions} MIs in {self.cycles} cycles"
            f" ({self.traps} traps, {self.interrupts_serviced} interrupts, "
            f"{self.interrupt_wait_cycles} interrupt-wait cycles)"
        )


@dataclass
class Simulator:
    """Drives a :class:`MachineState` over a :class:`ControlStore`.

    Attributes:
        trap_service_cycles: Cycle cost charged per serviced microtrap.
        interrupt_service_cycles: Cycle cost charged per serviced
            interrupt.
        interrupt_every: If set, an external interrupt is raised every
            N cycles (a crude I/O device model for experiment E9/E10).
        max_traps: Abort threshold against non-converging fault loops.
    """

    machine: MicroArchitecture
    store: ControlStore
    state: MachineState = None  # type: ignore[assignment]
    interrupt_handler: InterruptHandler | None = None
    trap_service: TrapService | None = None
    trap_service_cycles: int = 50
    interrupt_service_cycles: int = 20
    interrupt_every: int | None = None
    max_traps: int = 1000
    trace: list[str] | None = None
    #: Observability hook; None keeps the loop on the uninstrumented
    #: fast path (one ``is not None`` test per microinstruction).
    recorder: TraceRecorder | None = None
    #: Fault-injection hook (see :mod:`repro.faults.injectors`); any
    #: object with ``on_instruction``/``after_sequence`` methods.  None
    #: keeps the loop on the fast path, same contract as ``recorder``.
    injector: object | None = None
    #: Wall-clock watchdog in seconds; None disables the deadline.
    #: Checked every 1024 microinstructions so the budget costs one
    #: ``is not None`` test per loop when unset.
    deadline_s: float | None = None
    #: Execution engine: ``"interpretive"`` walks each microinstruction
    #: structurally every time; ``"decoded"`` lowers each control-store
    #: word once into an execution plan (:mod:`repro.sim.decode`) and
    #: runs the plan thereafter.  ``"traced"`` layers a profile-guided
    #: trace JIT on the decoded engine (:mod:`repro.sim.trace`): hot
    #: loop bodies are stitched into single compiled
    #: superinstructions, with guards bailing out to the decoded path
    #: mid-loop with exact architectural state.  All engines are
    #: observably identical (the parity suites in
    #: ``tests/sim/test_decode.py`` / ``tests/sim/test_trace.py``
    #: enforce it); decoded is several times faster on hot loops and
    #: traced another several times beyond that.
    engine: str = "interpretive"
    #: Back-edge executions of one loop head before the traced engine
    #: records and stitches a trace for it.
    trace_hot_threshold: int = 8
    #: Optional content-addressed disk tier for stitched trace
    #: sources (``engine="traced"`` only), written crash-atomically
    #: like :mod:`repro.cache`'s compile cache.
    trace_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.state is None:
            self.state = MachineState(self.machine)
        if self.engine not in ("interpretive", "decoded", "traced"):
            raise SimulationError(
                f"unknown engine {self.engine!r} "
                f"(expected 'interpretive', 'decoded' or 'traced')"
            )
        #: Lazily built plan store for the decoded engine; plans are
        #: keyed per encoded word so fault injectors that substitute
        #: mutated words can never hit a stale plan.
        self._plan_cache = None
        #: Lazily built trace JIT for the traced engine.
        self._trace_jit = None

    # ------------------------------------------------------------------
    def load_constants(self, resident: ResidentProgram) -> None:
        """Poke a resident program's constant pool into the ROM slots."""
        for name, value in resident.program.constants.items():
            self.state.poke_reg(name, value)

    def run(
        self,
        program_name: str,
        max_cycles: int = 1_000_000,
    ) -> RunResult:
        """Run a resident program from its entry until EXIT.

        Returns a :class:`RunResult`; raises on runaway executions and
        unserviceable traps.
        """
        resident = self.store.find(program_name)
        self.load_constants(resident)
        state = self.state
        state.upc = resident.entry
        state.halted = False
        state.exit_value = None
        state.micro_stack.clear()

        entry_snapshot = state.snapshot_registers()
        instructions = 0
        traps = 0
        interrupts = 0
        wait_cycles = 0
        pending_since: int | None = None
        start_cycles = state.cycles
        recorder = self.recorder
        injector = self.injector
        deadline = (
            time.monotonic() + self.deadline_s
            if self.deadline_s is not None else None
        )
        decoded = self.engine in ("decoded", "traced")
        plans = None
        fast_plans = None
        plan_stats_before = None
        jit = None
        trace_stats_before = None
        if self.engine == "traced":
            # The JIT only engages when nothing needs per-MI
            # visibility: an injector can substitute mutated words at
            # fetch, the trace sink wants every executed line, and
            # interrupt_every must observe every cycle crossing.  With
            # any of them attached the traced engine degrades to the
            # exact decoded path.
            # Snapshot before begin_run: a store swap detected there
            # invalidates on behalf of *this* run, so the drop belongs
            # in this run's trace_cache delta.
            if self._trace_jit is not None:
                trace_stats_before = self._trace_jit.stats.snapshot()
            if (
                injector is None
                and self.trace is None
                and not self.interrupt_every
            ):
                if self._trace_jit is None:
                    self._trace_jit = TraceJIT(self)
                jit = self._trace_jit
                jit.begin_run(resident)
        if decoded:
            if self._plan_cache is None:
                self._plan_cache = PlanCache()
            plans = self._plan_cache
            plan_stats_before = (
                plans.stats.decodes, plans.stats.invalidations,
            )
            # With no injector, trace sink, or recorder attached the
            # fetched word cannot differ from the stored one and nobody
            # needs to see it, so plans are reachable directly by
            # address — the hot loop skips the control-store fetch.
            if injector is None and self.trace is None and recorder is None:
                fast_plans = plans.addr_plans(resident)
        if recorder is not None:
            recorder.begin_run(program_name, self.machine.name, state.cycles)

        while not state.halted:
            if state.cycles - start_cycles > max_cycles:
                raise SimulationLimitError(
                    f"{program_name}: exceeded {max_cycles} cycles "
                    f"at address {state.upc:04d}",
                    kind="cycles", limit=max_cycles,
                )
            if (
                deadline is not None
                and (instructions & 1023) == 0
                and time.monotonic() > deadline
            ):
                raise SimulationLimitError(
                    f"{program_name}: wall-clock deadline of "
                    f"{self.deadline_s}s exceeded after {instructions} "
                    f"microinstructions (address {state.upc:04d})",
                    kind="deadline", limit=self.deadline_s,
                )
            if (
                self.interrupt_every
                and not state.interrupt_pending
                and state.cycles > 0
                and (state.cycles // self.interrupt_every)
                > ((state.cycles - 1) // self.interrupt_every)
            ):
                state.interrupt_pending = True
            if state.interrupt_pending and pending_since is None:
                pending_since = state.cycles

            loaded = None
            instruction = None
            plan = (
                fast_plans.get(state.upc) if fast_plans is not None else None
            )
            if plan is None:
                loaded = self.store.fetch(state.upc)
                instruction = loaded.instruction
                if self.trace is not None:
                    self.trace.append(
                        f"{state.cycles:6d} {state.upc:04d} {instruction}"
                    )
            try:
                if jit is not None and not state.interrupt_pending:
                    compiled = jit.traces.get(state.upc)
                    if compiled is not None and jit.recording is None:
                        executed = jit.execute(
                            compiled, state, start_cycles + max_cycles
                        )
                        if executed:
                            instructions += executed
                            continue
                        # A guard refused the very first MI: fall
                        # through to the decoded path for progress.
                if injector is not None:
                    loaded = injector.on_instruction(self, loaded)
                    instruction = loaded.instruction
                if decoded:
                    if plan is None:
                        plan = plans.lookup(resident, state.upc, loaded)
                        if plan is None:
                            plan = decode_word(
                                self, loaded, resident, state.upc
                            )
                            plans.insert(
                                resident, state.upc, loaded, plan,
                                direct=fast_plans is not None,
                            )
                            if recorder is not None:
                                recorder.record_decode(
                                    state.upc, state.cycles
                                )
                    serviced = plan.execute(state)
                else:
                    serviced = self._execute_instruction(instruction)
            except MicroTrap as trap:
                traps += 1
                if jit is not None:
                    # A trap inside a trace already flushed cycles and
                    # upc; account its completed MIs and abandon any
                    # in-progress recording (the path just diverged).
                    instructions += jit.consume_completed()
                    jit.abort_recording()
                if traps > self.max_traps:
                    raise SimulationLimitError(
                        f"{program_name}: more than {self.max_traps} traps"
                        f" (last trap at address {state.upc:04d}: {trap})",
                        kind="traps", limit=self.max_traps,
                    ) from trap
                self._service_trap(trap, entry_snapshot)
                if recorder is not None:
                    recorder.record_trap(
                        trap, state.upc, state.cycles, self.trap_service_cycles
                    )
                state.upc = resident.entry
                state.micro_stack.clear()
                state.cycles += self.trap_service_cycles
                continue
            if serviced:
                interrupts += 1
                waited = 0
                if pending_since is not None:
                    waited = state.cycles - pending_since
                    wait_cycles += waited
                    pending_since = None
                if recorder is not None:
                    recorder.record_interrupt(
                        state.cycles, waited, self.interrupt_service_cycles
                    )
                state.cycles += self.interrupt_service_cycles
            mi_cycles = (
                plan.cycles if decoded
                else instruction.cached_cycles(self.machine)
            )
            if recorder is not None:
                recorder.record_mi(state.upc, loaded, state.cycles, mi_cycles)
            state.cycles += mi_cycles
            instructions += 1
            # Sequencing needs the *absolute* control-store address:
            # loaded.address is relative to the program's base.
            current = state.upc
            if decoded:
                plan.sequence(state)
            else:
                self._sequence(instruction, current, resident)
            if injector is not None:
                override = injector.after_sequence(self, current, resident)
                if override is not None:
                    state.upc = override
            if jit is not None:
                if jit.recording is not None:
                    jit.record_step(current, loaded, state)
                elif state.upc <= current and not state.halted:
                    # A back edge: the candidate loop head is the
                    # sequencing target.  Heat it; at threshold the
                    # JIT arms recording for the next iteration.
                    jit.note_back_edge(state.upc)

        plan_counters = None
        if decoded:
            plan_counters = self.plan_cache_counters(
                instructions, plan_stats_before
            )
            if recorder is not None and recorder.tracer.enabled:
                recorder.tracer.emit(
                    Event(name="sim.plan_cache", cat="sim", ph=PH_INSTANT,
                          ts=state.cycles, track=TRACK_SIM,
                          args=dict(plan_counters))
                )
        trace_counters = None
        if self.engine == "traced":
            trace_counters = self.trace_cache_counters(trace_stats_before)
            if recorder is not None and recorder.tracer.enabled:
                recorder.tracer.emit(
                    Event(name="sim.trace_cache", cat="sim", ph=PH_INSTANT,
                          ts=state.cycles, track=TRACK_SIM,
                          args=dict(trace_counters))
                )
        return RunResult(
            cycles=state.cycles - start_cycles,
            instructions=instructions,
            traps=traps,
            interrupts_serviced=interrupts,
            interrupt_wait_cycles=wait_cycles,
            exit_value=state.exit_value,
            profile=recorder.profile if recorder is not None else None,
            plan_cache=plan_counters,
            trace_cache=trace_counters,
        )

    # ------------------------------------------------------------------
    def plan_cache_counters(
        self, instructions: int, before: tuple[int, int] | None
    ) -> dict[str, int]:
        """This run's plan-cache counters from the lifetime stats.

        Under the decoded engine every executed microinstruction runs
        exactly one plan, so per-run hits are executed instructions
        minus the decodes the run added — derived on the cold path
        instead of counted in the hot loop.
        """
        stats = self._plan_cache.stats if self._plan_cache else None
        decodes_before, invalidations_before = before or (0, 0)
        misses = (stats.decodes - decodes_before) if stats else 0
        invalidations = (
            (stats.invalidations - invalidations_before) if stats else 0
        )
        return {
            "hits": max(0, instructions - misses),
            "misses": misses,
            "invalidations": invalidations,
        }

    # ------------------------------------------------------------------
    def trace_cache_counters(
        self, before: tuple[int, int, int, int] | None
    ) -> dict[str, int]:
        """This run's trace-JIT counters from the lifetime stats.

        Plan-cache style: ``hits`` are trace dispatches that made
        progress, ``misses`` are traces stitched (compiles),
        ``invalidations`` wholesale drops, ``bailouts`` guard exits
        that abandoned a loop body mid-iteration.  All zeros when the
        JIT never engaged (injector, trace sink or ``interrupt_every``
        attached).
        """
        jit = self._trace_jit
        if jit is None:
            return {"hits": 0, "misses": 0, "invalidations": 0,
                    "bailouts": 0}
        compiles, enters, bailouts, invalidations = before or (0, 0, 0, 0)
        stats = jit.stats
        return {
            "hits": stats.enters - enters,
            "misses": stats.compiles - compiles,
            "invalidations": stats.invalidations - invalidations,
            "bailouts": stats.bailouts - bailouts,
        }

    # ------------------------------------------------------------------
    def _service_trap(
        self, trap: MicroTrap, entry_snapshot: dict[str, int]
    ) -> None:
        """§2.1.5 restart semantics: macro-visible registers survive,
        microregisters revert to their values at microprogram entry."""
        state = self.state
        macro_values = {
            register.name: state.registers[register.name]
            for register in self.machine.registers.macro_visible()
        }
        state.restore_registers(entry_snapshot)
        state.registers.update(macro_values)
        if self.trap_service is None:
            raise SimulationError(
                f"unserviced {trap}"
            ) from trap
        self.trap_service(state, trap)

    # ------------------------------------------------------------------
    def _execute_instruction(self, instruction: MicroInstruction) -> bool:
        """Execute all placed ops phase by phase.

        Returns True if a pending interrupt was serviced by a ``poll``.
        """
        state = self.state
        serviced = False
        for group in instruction.phase_groups(self.machine):
            reg_writes: list[tuple[str, int]] = []
            flag_writes: dict[str, int] = {}
            memory_ops: list[Callable[[], None]] = []
            for placed in group:
                op = placed.op
                name = op.op
                src_values = [
                    state.read_reg(s.name) if isinstance(s, Reg) else s.value
                    for s in op.srcs
                ]
                if name == "nop":
                    continue
                if name == "poll":
                    if state.interrupt_pending and self.interrupt_handler:
                        self.interrupt_handler(state)
                        state.interrupt_pending = False
                        serviced = True
                    continue
                if name == "read":
                    value = state.memory.read(src_values[0])
                    reg_writes.append((op.dest.name, value))
                    continue
                if name == "write":
                    address, data = src_values[0], src_values[1]
                    memory_ops.append(
                        lambda a=address, d=data: state.memory.write(a, d)
                    )
                    # Touch now so pagefaults surface at the op, not at
                    # commit (write-allocate check).
                    if not state.memory.is_mapped(address):
                        state.memory.write(address, data)
                    continue
                if name == "ldscr":
                    value = state.scratchpad.read(src_values[0])
                    reg_writes.append((op.dest.name, value))
                    continue
                if name == "stscr":
                    value, address = src_values[0], src_values[1]
                    memory_ops.append(
                        lambda a=address, v=value: state.scratchpad.write(a, v)
                    )
                    continue
                if name == "setblk":
                    pointer = self.machine.registers.bank_pointer
                    if pointer is None:
                        raise SimulationError("setblk on unbanked machine")
                    reg_writes.append((pointer, src_values[0]))
                    continue
                dest_old = state.read_reg(op.dest.name) if op.dest else 0
                result = evaluate(
                    name,
                    src_values,
                    self.machine.word_size,
                    dest_old=dest_old,
                    carry_in=state.flags.get("C", 0),
                )
                if result.value is not None and op.dest is not None:
                    reg_writes.append((op.dest.name, result.value))
                flag_writes.update(result.flags)
            # Commit phase: all reads above saw the phase-entry state.
            for name, value in reg_writes:
                state.write_reg(name, value)
            for action in memory_ops:
                action()
            state.flags.update(flag_writes)
        return serviced

    # ------------------------------------------------------------------
    def _sequence(
        self,
        instruction: MicroInstruction,
        address: int,
        resident: ResidentProgram,
    ) -> None:
        """Advance the microprogram counter per the terminator."""
        state = self.state
        terminator = instruction.terminator

        def resolve(label: str) -> int:
            return resident.base + resident.program.labels[label]

        if terminator is None:
            state.upc = address + 1
            return
        if isinstance(terminator, Fallthrough) or isinstance(terminator, Jump):
            state.upc = resolve(terminator.target)
            return
        if isinstance(terminator, Branch):
            taken = condition_holds(terminator.cond, state.flags)
            state.upc = resolve(terminator.target if taken else terminator.otherwise)
            return
        if isinstance(terminator, Multiway):
            value = state.read_reg(terminator.reg.name)
            for case in terminator.cases:
                if case.matches(value):
                    state.upc = resolve(case.target)
                    return
            state.upc = resolve(terminator.default)
            return
        if isinstance(terminator, Call):
            state.push_return(resolve(terminator.next))
            state.upc = resident.base + resident.program.procedures[terminator.proc]
            return
        if isinstance(terminator, Ret):
            state.upc = state.pop_return()
            return
        if isinstance(terminator, Exit):
            state.halted = True
            if terminator.value is not None:
                state.exit_value = state.read_reg(terminator.value.name)
            return
        raise SimulationError(f"unknown terminator {terminator!r}")
