"""Datapath semantics: what each micro-operation computes.

Pure integer functions at a given bit width, shared by the simulator
and by the verification subsystem's bounded checker (so a verified
property means exactly what the simulator executes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class OpResult:
    """Result of evaluating one micro-operation on the datapath."""

    value: int | None
    flags: dict[str, int]


def _flags_zn(value: int, width: int) -> dict[str, int]:
    return {
        "Z": int(value == 0),
        "N": (value >> (width - 1)) & 1,
    }


def evaluate(
    op: str,
    srcs: list[int],
    width: int,
    dest_old: int = 0,
    carry_in: int = 0,
) -> OpResult:
    """Evaluate a datapath op; raises for ops without pure semantics.

    ``dest_old`` feeds read-modify-write ops (``dep``); ``carry_in``
    feeds ``adc``.
    """
    mask = (1 << width) - 1

    if op in ("add", "adc", "sub", "cmp"):
        a = srcs[0] & mask
        if op == "sub" or op == "cmp":
            b = (~srcs[1]) & mask
            carry = 1
        else:
            b = srcs[1] & mask
            carry = carry_in if op == "adc" else 0
        total = a + b + carry
        value = total & mask
        flags = _flags_zn(value, width)
        flags["C"] = int(total > mask)
        return OpResult(None if op == "cmp" else value, flags)

    if op in ("and", "or", "xor", "nand", "nor"):
        a, b = srcs[0] & mask, srcs[1] & mask
        value = {
            "and": a & b,
            "or": a | b,
            "xor": a ^ b,
            "nand": (~(a & b)) & mask,
            "nor": (~(a | b)) & mask,
        }[op]
        return OpResult(value, _flags_zn(value, width))

    if op in ("inc", "dec", "not", "neg"):
        a = srcs[0] & mask
        if op == "inc":
            total = a + 1
            value = total & mask
            flags = _flags_zn(value, width)
            flags["C"] = int(total > mask)
            return OpResult(value, flags)
        if op == "dec":
            total = a + mask  # a - 1 in two's complement
            value = total & mask
            flags = _flags_zn(value, width)
            flags["C"] = int(total > mask)
            return OpResult(value, flags)
        value = ((~a) & mask) if op == "not" else ((-a) & mask)
        return OpResult(value, _flags_zn(value, width))

    if op in ("shl", "shr", "sar", "rol", "ror"):
        a = srcs[0] & mask
        count = srcs[1] if len(srcs) > 1 else 1
        if count < 0:
            raise SimulationError(f"{op}: negative shift count {count}")
        count = min(count, width) if op in ("shl", "shr", "sar") else count % max(width, 1)
        underflow = 0
        if op == "shl":
            for _ in range(count):
                underflow = (a >> (width - 1)) & 1
                a = (a << 1) & mask
        elif op == "shr":
            for _ in range(count):
                underflow = a & 1
                a >>= 1
        elif op == "sar":
            sign = a >> (width - 1)
            for _ in range(count):
                underflow = a & 1
                a = (a >> 1) | (sign << (width - 1))
        elif op == "rol":
            for _ in range(count):
                top = (a >> (width - 1)) & 1
                a = ((a << 1) & mask) | top
                underflow = top
        else:  # ror
            for _ in range(count):
                bottom = a & 1
                a = (a >> 1) | (bottom << (width - 1))
                underflow = bottom
        flags = _flags_zn(a, width)
        flags["UF"] = underflow
        return OpResult(a, flags)

    if op == "ext":
        src, position, field_width = srcs[0] & mask, srcs[1], srcs[2]
        value = (src >> position) & ((1 << field_width) - 1)
        return OpResult(value, {"Z": int(value == 0)})

    if op == "dep":
        src, position, field_width = srcs[0] & mask, srcs[1], srcs[2]
        field_mask = ((1 << field_width) - 1) << position
        value = (dest_old & ~field_mask & mask) | ((src << position) & field_mask)
        return OpResult(value & mask, {})

    if op == "mul":
        value = (srcs[0] * srcs[1]) & mask
        return OpResult(value, _flags_zn(value, width))

    if op in ("mov", "movi"):
        value = srcs[0] & mask
        return OpResult(value, {})

    raise SimulationError(f"op {op!r} has no pure datapath semantics")


#: Ops the simulator handles itself (state-touching, not pure).
STATEFUL_OPS = frozenset(
    {"read", "write", "ldscr", "stscr", "setblk", "poll", "nop"}
)


def condition_holds(cond: str, flags: dict[str, int]) -> bool:
    """Evaluate a branch condition against the flag register."""
    table = {
        "TRUE": True,
        "Z": flags.get("Z", 0) == 1,
        "NZ": flags.get("Z", 0) == 0,
        "N": flags.get("N", 0) == 1,
        "NN": flags.get("N", 0) == 0,
        "C": flags.get("C", 0) == 1,
        "NC": flags.get("C", 0) == 0,
        "UF": flags.get("UF", 0) == 1,
        "NUF": flags.get("UF", 0) == 0,
    }
    try:
        return table[cond]
    except KeyError:
        raise SimulationError(f"unknown condition {cond!r}") from None
