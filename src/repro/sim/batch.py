"""Batched lockstep execution: N cases per decoded dispatch (S23).

The scalar engines pay one Python dispatch per microinstruction *per
case*; a million-case campaign is a million interpreter loops.  This
module holds N independent cases as **struct-of-arrays** — every
register and flag becomes a lane vector — and drives them in lockstep
through batched execution plans: one step closure per placed op per
microinstruction, each operating on whole lane vectors (numpy when
available, a pure-Python list vector otherwise), so the Python-level
dispatch cost is amortised across the batch.  This is the structural
move that makes VADL-style generated simulators fast, applied to the
pre-decoded engine of :mod:`repro.sim.decode`.

**Lockstep invariant.**  While lanes are live they share one
microprogram counter, one cycle count and one micro return stack —
legal because a lane that would diverge *leaves the batch* first.

**Divergence peel-off.**  Any lane that traps (pagefault), takes a
different branch direction than the batch leader (the lowest live
lane), selects a different multiway target, or raises a per-lane
datapath error is peeled: it is re-executed **from scratch** on the
scalar decoded :class:`~repro.sim.simulator.Simulator` and its result
merged back in case order.  Replay-from-scratch (rather than handing
over mid-run state) is deliberate: §2.1.5 trap service restores
microregisters to their *microprogram-entry* values, which a lane
peeled mid-run could not reconstruct — the scalar engine is the
reference semantics, so a peeled lane is byte-identical to a serial
run by construction.  Batch-wide events (budget exhaustion, a shared
stack overflow, an unsupported word) peel every live lane the same
way.

**Admission.**  Batching only engages for clean homogeneous work:
a fault injector, a profile recorder, a trace sink, an interrupt
source, a wall-clock deadline or a banked register file all refuse
admission (:func:`batch_refusal`) and every lane runs scalar — the
same disengage discipline as the trace JIT.  Fault-campaign scenario
runs always carry injectors, so ``--batch N`` campaigns stay
byte-identical to serial at every batch size; the batched win lands
on clean sweeps (golden-style runs, difftest lanes, benchmark
workloads).

``PLANT_LANE_XOR`` is the self-check hook: when non-zero, every
batched register commit XORs lane 0's value with it — a one-lane
batch-state corruption the difftest ``batched`` axis must catch.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable

from repro.asm.loader import ControlStore
from repro.errors import MicroTrap, SimulationError
from repro.mir.block import (
    Branch,
    Call,
    Exit,
    Fallthrough,
    Jump,
    Multiway,
    Ret,
)
from repro.mir.operands import Reg
from repro.sim.decode import _COND_TESTS
from repro.sim.memory import MainMemory, Scratchpad
from repro.sim.semantics import evaluate
from repro.sim.simulator import RunResult, Simulator
from repro.sim.state import MachineState

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend="python"
    _np = None

#: True when the numpy backend is importable; the pure-Python vector
#: fallback keeps a stdlib-only install fully functional.
HAVE_NUMPY = _np is not None

#: Self-check plant: when non-zero, every batched register commit
#: XORs lane 0's committed value with this (see module docstring).
PLANT_LANE_XOR = 0

#: Default lane count for batched sweeps (difftest axis, benchmarks).
DEFAULT_LANES = 64


# ----------------------------------------------------------------------
# Vector backends
# ----------------------------------------------------------------------
class _PyVec(list):
    """A list with elementwise operators: the pure-Python lane vector.

    Implements exactly the operator surface the batched step closures
    use (`+ - & | ^ >> * == >`), each returning a fresh ``_PyVec`` of
    ints (comparisons yield 0/1), so the same step code drives numpy
    arrays and Python lists unchanged.
    """

    def _zip(self, other, fn):
        if isinstance(other, list):
            return _PyVec(fn(a, b) for a, b in zip(self, other))
        return _PyVec(fn(a, other) for a in self)

    def __add__(self, other):
        return self._zip(other, operator.add)

    def __radd__(self, other):
        return self._zip(other, lambda a, b: b + a)

    def __sub__(self, other):
        return self._zip(other, operator.sub)

    def __rsub__(self, other):
        return self._zip(other, lambda a, b: b - a)

    def __and__(self, other):
        return self._zip(other, operator.and_)

    def __or__(self, other):
        return self._zip(other, operator.or_)

    def __xor__(self, other):
        return self._zip(other, operator.xor)

    def __rshift__(self, other):
        return self._zip(other, operator.rshift)

    def __mul__(self, other):
        return self._zip(other, operator.mul)

    def __rmul__(self, other):
        return self._zip(other, lambda a, b: b * a)

    def __eq__(self, other):  # type: ignore[override]
        return self._zip(other, lambda a, b: int(a == b))

    def __ne__(self, other):  # type: ignore[override]
        return self._zip(other, lambda a, b: int(a != b))

    def __gt__(self, other):  # type: ignore[override]
        return self._zip(other, lambda a, b: int(a > b))

    __hash__ = None  # type: ignore[assignment]

    def any(self) -> bool:
        return any(v for v in list.__iter__(self))

    def all(self) -> bool:
        return all(v for v in list.__iter__(self))


class _NumpyOps:
    """Vector constructors for the numpy backend."""

    name = "numpy"

    def full(self, n: int, value: int):
        return _np.full(n, value, dtype=_np.int64)

    def vector(self, values):
        return _np.array(values, dtype=_np.int64)


class _PythonOps:
    """Vector constructors for the pure-Python backend."""

    name = "python"

    def full(self, n: int, value: int):
        return _PyVec([value] * n)

    def vector(self, values):
        return _PyVec(values)


def resolve_backend(backend: str = "auto") -> str:
    """``"numpy"`` or ``"python"`` — never raises on a missing numpy.

    ``"auto"`` prefers numpy when importable; asking for ``"numpy"``
    without it installed quietly selects the pure-Python fallback so a
    stdlib-only install keeps working (the ``[batch]`` extra in
    ``pyproject.toml`` installs the fast path).
    """
    if backend == "python":
        return "python"
    if backend in ("auto", "numpy"):
        return "numpy" if HAVE_NUMPY else "python"
    raise SimulationError(
        f"unknown batch backend {backend!r} "
        f"(expected 'auto', 'numpy' or 'python')"
    )


def _ops(backend: str):
    return _NumpyOps() if resolve_backend(backend) == "numpy" else _PythonOps()


# ----------------------------------------------------------------------
# Case and outcome containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchCase:
    """One lane's initial state: physical register pokes + memory image."""

    registers: dict[str, int] = field(default_factory=dict)
    memory: dict[int, int] = field(default_factory=dict)


class LaneOutcome:
    """One case's final state, whether it completed batched or peeled.

    Duck-types the observation surface the difftest oracle reads from
    a scalar run: ``read_reg`` (banked windows resolve against the
    snapshot's bank pointer), a ``scratchpad`` with ``read``, a
    ``memory`` with ``dump_words``, the final ``flags`` and the
    :class:`~repro.sim.simulator.RunResult`.  ``error`` carries the
    exception a peeled lane's scalar replay raised (budget overruns,
    unserviced traps); ``result`` is then ``None``.
    """

    __slots__ = ("machine", "result", "error", "registers", "flags",
                 "scratchpad", "memory", "peeled")

    def __init__(self, machine, *, result, error, registers, flags,
                 scratchpad, memory, peeled):
        self.machine = machine
        self.result: RunResult | None = result
        self.error: BaseException | None = error
        self.registers: dict[str, int] = registers
        self.flags: dict[str, int] = flags
        self.scratchpad = scratchpad
        self.memory = memory
        self.peeled: bool = peeled

    def read_reg(self, name: str) -> int:
        files = self.machine.registers
        if files.is_window(name):
            pointer = files.bank_pointer
            if pointer is None:
                raise SimulationError(f"window {name!r} but no bank pointer")
            name = files.resolve_window(name, self.registers[pointer])
        try:
            return self.registers[name]
        except KeyError:
            raise SimulationError(f"unknown register {name!r}") from None


class _DenseLaneView:
    """``dump_words`` over one lane's row of a dense memory array."""

    __slots__ = ("_row", "size")

    def __init__(self, row, size: int):
        self._row = row
        self.size = size

    def dump_words(self, base: int, count: int) -> list[int]:
        return [int(v) for v in self._row[base:base + count]]


# ----------------------------------------------------------------------
# Batched memory
# ----------------------------------------------------------------------
class _DenseMemory:
    """All lanes' main memory as one (lanes, size) numpy array.

    Only used on the numpy backend with paging disabled — the regime
    where no memory touch can trap, so reads and writes are single
    fancy-indexing operations across the batch.
    """

    __slots__ = ("words", "rows", "size")

    def __init__(self, lanes: int, size: int = 65536):
        self.size = size
        self.words = _np.zeros((lanes, size), dtype=_np.int64)
        self.rows = _np.arange(lanes)

    def load(self, lane: int, base: int, values) -> None:
        for offset, value in enumerate(values):
            if not 0 <= base + offset < self.size:
                raise SimulationError("load_words out of range")
            self.words[lane, base + offset] = value

    def _clamp(self, state: BatchedState, addrs):
        bad = (addrs < 0) | (addrs >= self.size)
        if bad.any():
            for lane in state.live_lanes():
                if bad[lane]:
                    state.peel(lane, "memory-range")
            addrs = _np.where(bad, 0, addrs)
        return addrs

    def read_vec(self, state: BatchedState, addrs):
        return self.words[self.rows, self._clamp(state, addrs)]

    def write_vec(self, state: BatchedState, addrs, values) -> None:
        addrs = self._clamp(state, addrs)
        live = state.live_vec
        rows = self.rows
        # Peeled lanes must not commit: route their store to their own
        # address but with the value already there (a no-op write).
        current = self.words[rows, addrs]
        self.words[rows, addrs] = _np.where(live == 1, values, current)

    def lane_view(self, lane: int) -> _DenseLaneView:
        return _DenseLaneView(self.words[lane], self.size)


class _LaneMemories:
    """Per-lane :class:`MainMemory` objects (paging or pure-Python).

    Reads and writes loop over live lanes; a :class:`MicroTrap` or
    address error in one lane peels that lane and leaves the rest in
    lockstep.
    """

    __slots__ = ("memories",)

    def __init__(self, lanes: int, *, paging: bool):
        self.memories = [
            MainMemory(paging_enabled=paging) for _ in range(lanes)
        ]

    def load(self, lane: int, base: int, values) -> None:
        self.memories[lane].load_words(base, list(values))

    def read_vec(self, state: BatchedState, addrs):
        values = [0] * state.n
        for lane in state.live_lanes():
            try:
                values[lane] = self.memories[lane].read(int(addrs[lane]))
            except (MicroTrap, SimulationError):
                state.peel(lane, "trap")
        return state.ops.vector(values)

    def write_vec(self, state: BatchedState, addrs, values) -> None:
        for lane in state.live_lanes():
            try:
                self.memories[lane].write(
                    int(addrs[lane]), int(values[lane])
                )
            except (MicroTrap, SimulationError):
                state.peel(lane, "trap")

    def touch(self, state: BatchedState, addrs, values) -> None:
        """The decoded engine's write-allocate check, per lane."""
        for lane in state.live_lanes():
            address = int(addrs[lane])
            memory = self.memories[lane]
            if not memory.is_mapped(address):
                try:
                    memory.write(address, int(values[lane]))
                except (MicroTrap, SimulationError):
                    state.peel(lane, "trap")

    def lane_view(self, lane: int) -> MainMemory:
        return self.memories[lane]


# ----------------------------------------------------------------------
# Batched state
# ----------------------------------------------------------------------
class _PeelAll(Exception):
    """Batch-wide divergence: every live lane goes to the scalar path."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class BatchedState:
    """N cases as struct-of-arrays, advanced in lockstep.

    ``registers``/``flags`` map names to lane vectors; main memory and
    the scratchpads are per-lane.  The microsequencer (``upc``,
    ``cycles``, ``micro_stack``, ``halted``) is *shared* — the
    lockstep invariant — and ``live``/``live_vec``/``peeled`` track
    which lanes are still following the batch leader.
    """

    def __init__(self, machine, n: int, ops, *, paging: bool = False):
        self.machine = machine
        self.n = n
        self.ops = ops
        self.registers = {
            register.name: ops.full(n, register.reset)
            for register in machine.registers
        }
        self.flags = {flag: ops.full(n, 0) for flag in machine.flags}
        self.live = [True] * n
        self.live_vec = ops.full(n, 1)
        self.peeled: dict[int, str] = {}
        if ops.name == "numpy" and not paging:
            self.memory = _DenseMemory(n)
        else:
            self.memory = _LaneMemories(n, paging=paging)
        self.scratchpads = [
            Scratchpad(machine.scratchpad_size) for _ in range(n)
        ]
        self.upc = 0
        self.cycles = 0
        self.micro_stack: list[int] = []
        self.halted = False
        self.exit_value = None

    # -- lane management -------------------------------------------------
    def live_lanes(self) -> list[int]:
        return [lane for lane in range(self.n) if self.live[lane]]

    def any_live(self) -> bool:
        return any(self.live)

    def peel(self, lane: int, reason: str) -> None:
        if self.live[lane]:
            self.live[lane] = False
            self.live_vec[lane] = 0
            self.peeled[lane] = reason

    def peel_all(self, reason: str) -> None:
        for lane in self.live_lanes():
            self.peel(lane, reason)

    # -- lockstep sequencing ---------------------------------------------
    def settle(self, targets, reason: str) -> None:
        """Follow the batch leader; peel lanes that disagree.

        ``targets`` is a per-lane vector of next control-store
        addresses; the leader is the lowest live lane.
        """
        lanes = self.live_lanes()
        leader = int(targets[lanes[0]])
        stray = (1 - (targets == leader) * 1) * self.live_vec
        if stray.any():
            for lane in lanes[1:]:
                if stray[lane]:
                    self.peel(lane, reason)
        self.upc = leader

    def poke_constant(self, name: str, value: int) -> None:
        register = self.machine.registers[name]
        self.registers[name] = self.ops.full(self.n, value & register.mask)

    def init_register(self, lane: int, name: str, value: int) -> None:
        """Loader-level per-lane poke with ``write_reg`` checking."""
        files = self.machine.registers
        if name not in files.registers:
            raise SimulationError(f"unknown register {name!r}")
        register = files.registers[name]
        if register.readonly:
            raise SimulationError(f"write to read-only register {name!r}")
        self.registers[name][lane] = value & register.mask


# ----------------------------------------------------------------------
# Batched operand pre-resolution
# ----------------------------------------------------------------------
def _b_src_reader(state: BatchedState, operand):
    """A vector reader for one source operand.

    Immediates become cached constant vectors (treated as immutable —
    every consumer derives fresh vectors through operators); registers
    become direct slot lookups.  Windows and unknown names refuse
    batching (the scalar replay reproduces their dynamic behaviour,
    including the raises).
    """
    if not isinstance(operand, Reg):
        constant = state.ops.full(state.n, operand.value)
        return lambda b: constant
    name = operand.name
    files = state.machine.registers
    if files.is_window(name) or name not in files.registers:
        raise _PeelAll(f"dynamic register {name!r}")
    return lambda b: b.registers[name]


def _b_dest_slot(state: BatchedState, name: str) -> tuple[str, int]:
    """``(target, mask)`` for a plain writable destination register.

    Anything the scalar engine routes through ``write_reg`` at commit
    time (windows, read-only, unknown names) refuses batching.
    """
    files = state.machine.registers
    if files.is_window(name) or name not in files.registers:
        raise _PeelAll(f"dynamic destination {name!r}")
    register = files.registers[name]
    if register.readonly:
        raise _PeelAll(f"read-only destination {name!r}")
    return (name, register.mask)


# ----------------------------------------------------------------------
# Batched step factories (exact vector mirrors of repro.sim.decode)
# ----------------------------------------------------------------------
def _b_step_read(read_addr, target, mask):
    def step(b, reg_writes, flag_writes, memory_ops):
        reg_writes.append(
            (target, mask, b.memory.read_vec(b, read_addr(b)))
        )

    return step


def _b_step_write(read_addr, read_data):
    def step(b, reg_writes, flag_writes, memory_ops):
        addrs = read_addr(b)
        data = read_data(b)
        memory_ops.append(
            lambda a=addrs, d=data: b.memory.write_vec(b, a, d)
        )
        # Touch now so pagefaults surface at the op, not at commit —
        # only meaningful in per-lane mode (dense mode never pages).
        touch = getattr(b.memory, "touch", None)
        if touch is not None:
            touch(b, addrs, data)

    return step


def _b_step_ldscr(read_addr, target, mask):
    def step(b, reg_writes, flag_writes, memory_ops):
        addrs = read_addr(b)
        values = [0] * b.n
        for lane in b.live_lanes():
            try:
                values[lane] = b.scratchpads[lane].read(int(addrs[lane]))
            except SimulationError:
                b.peel(lane, "scratchpad")
        reg_writes.append((target, mask, b.ops.vector(values)))

    return step


def _b_step_stscr(read_value, read_addr):
    def step(b, reg_writes, flag_writes, memory_ops):
        values = read_value(b)
        addrs = read_addr(b)

        def commit(a=addrs, v=values):
            for lane in b.live_lanes():
                try:
                    b.scratchpads[lane].write(int(a[lane]), int(v[lane]))
                except SimulationError:
                    b.peel(lane, "scratchpad")

        memory_ops.append(commit)

    return step


def _b_step_mov(read_src, target, mask, word_mask):
    def step(b, reg_writes, flag_writes, memory_ops):
        reg_writes.append((target, mask, read_src(b) & word_mask))

    return step


def _b_step_add(read_a, read_b, target, mask, word_mask, sign_shift):
    def step(b, reg_writes, flag_writes, memory_ops):
        total = (read_a(b) & word_mask) + (read_b(b) & word_mask)
        value = total & word_mask
        reg_writes.append((target, mask, value))
        flag_writes["Z"] = (value == 0) * 1
        flag_writes["N"] = (value >> sign_shift) & 1
        flag_writes["C"] = (total > word_mask) * 1

    return step


def _b_step_sub(read_a, read_b, target, mask, word_mask, sign_shift):
    def step(b, reg_writes, flag_writes, memory_ops):
        total = (
            (read_a(b) & word_mask)
            + ((read_b(b) ^ word_mask) & word_mask) + 1
        )
        value = total & word_mask
        reg_writes.append((target, mask, value))
        flag_writes["Z"] = (value == 0) * 1
        flag_writes["N"] = (value >> sign_shift) & 1
        flag_writes["C"] = (total > word_mask) * 1

    return step


def _b_step_cmp(read_a, read_b, word_mask, sign_shift):
    def step(b, reg_writes, flag_writes, memory_ops):
        total = (
            (read_a(b) & word_mask)
            + ((read_b(b) ^ word_mask) & word_mask) + 1
        )
        value = total & word_mask
        flag_writes["Z"] = (value == 0) * 1
        flag_writes["N"] = (value >> sign_shift) & 1
        flag_writes["C"] = (total > word_mask) * 1

    return step


def _b_step_incdec(read_a, target, mask, word_mask, sign_shift, delta):
    def step(b, reg_writes, flag_writes, memory_ops):
        total = (read_a(b) & word_mask) + delta
        value = total & word_mask
        reg_writes.append((target, mask, value))
        flag_writes["Z"] = (value == 0) * 1
        flag_writes["N"] = (value >> sign_shift) & 1
        flag_writes["C"] = (total > word_mask) * 1

    return step


_LOGIC = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}


def _b_step_logic(fn, read_a, read_b, target, mask, word_mask, sign_shift):
    def step(b, reg_writes, flag_writes, memory_ops):
        value = fn(read_a(b) & word_mask, read_b(b) & word_mask)
        reg_writes.append((target, mask, value))
        flag_writes["Z"] = (value == 0) * 1
        flag_writes["N"] = (value >> sign_shift) & 1

    return step


def _b_step_generic(name, readers, has_dest, commit, read_old, width):
    """Per-lane :func:`evaluate` fallback for un-inlined ops.

    The loop costs one scalar evaluation per live lane — same as the
    scalar engine — but these ops are rare in generated and compiled
    code; the hot ALU orders above stay fully vectorised.  A per-lane
    :class:`SimulationError` (e.g. a negative shift count) peels that
    lane; the scalar replay raises identically.
    """

    def step(b, reg_writes, flag_writes, memory_ops):
        src_vecs = [read(b) for read in readers]
        old_vec = read_old(b) if read_old is not None else None
        carry_vec = b.flags.get("C")
        values = [0] * b.n
        flag_cols: dict[str, list[int]] = {}
        wrote_value = False
        for lane in b.live_lanes():
            try:
                result = evaluate(
                    name,
                    [int(vec[lane]) for vec in src_vecs],
                    width,
                    dest_old=(
                        int(old_vec[lane]) if old_vec is not None else 0
                    ),
                    carry_in=(
                        int(carry_vec[lane]) if carry_vec is not None else 0
                    ),
                )
            except SimulationError:
                b.peel(lane, "op")
                continue
            if result.value is not None:
                values[lane] = result.value
                wrote_value = True
            for flag, value in result.flags.items():
                flag_cols.setdefault(flag, [0] * b.n)[lane] = value
        if wrote_value and has_dest:
            reg_writes.append((commit[0], commit[1], b.ops.vector(values)))
        for flag, column in flag_cols.items():
            flag_writes[flag] = b.ops.vector(column)

    return step


def _b_decode_op(state: BatchedState, placed):
    """Lower one placed op to a batched step (None for no-ops).

    ``poll`` lowers to nothing: batches never admit an interrupt
    source, so the pending latch can never be set (the scalar step is
    an identical no-op then).  ``setblk`` implies a banked register
    file, which refuses admission before decode is ever reached.
    """
    machine = state.machine
    op = placed.op
    name = op.op
    if name in ("nop", "poll"):
        return None
    if name == "setblk":
        raise _PeelAll("setblk")

    readers = tuple(_b_src_reader(state, src) for src in op.srcs)
    if name == "read":
        target, mask = _b_dest_slot(state, op.dest.name)
        return _b_step_read(readers[0], target, mask)
    if name == "write":
        return _b_step_write(readers[0], readers[1])
    if name == "ldscr":
        target, mask = _b_dest_slot(state, op.dest.name)
        return _b_step_ldscr(readers[0], target, mask)
    if name == "stscr":
        return _b_step_stscr(readers[0], readers[1])

    word_mask = machine.mask()
    sign_shift = machine.word_size - 1
    if op.dest is not None:
        target, mask = _b_dest_slot(state, op.dest.name)
        if name in ("mov", "movi"):
            return _b_step_mov(readers[0], target, mask, word_mask)
        if name == "add":
            return _b_step_add(readers[0], readers[1], target, mask,
                               word_mask, sign_shift)
        if name == "sub":
            return _b_step_sub(readers[0], readers[1], target, mask,
                               word_mask, sign_shift)
        if name == "inc":
            return _b_step_incdec(readers[0], target, mask, word_mask,
                                  sign_shift, 1)
        if name == "dec":
            return _b_step_incdec(readers[0], target, mask, word_mask,
                                  sign_shift, word_mask)
        if name in _LOGIC:
            return _b_step_logic(_LOGIC[name], readers[0], readers[1],
                                 target, mask, word_mask, sign_shift)
    if name == "cmp":
        return _b_step_cmp(readers[0], readers[1], word_mask, sign_shift)

    if op.dest is not None:
        commit = _b_dest_slot(state, op.dest.name)
        read_old = _b_src_reader(state, op.dest)
    else:
        commit = ("", None)
        read_old = None
    return _b_step_generic(
        name, readers, op.dest is not None, commit, read_old,
        machine.word_size,
    )


# ----------------------------------------------------------------------
# Batched terminator pre-decoding
# ----------------------------------------------------------------------
def _b_decode_terminator(state, terminator, address, resident):
    base = resident.base
    labels = resident.program.labels

    def resolve(label: str) -> int:
        return base + labels[label]

    if terminator is None or isinstance(terminator, (Fallthrough, Jump)):
        target = (
            address + 1 if terminator is None
            else resolve(terminator.target)
        )

        def seq_jump(b):
            b.upc = target

        return seq_jump

    if isinstance(terminator, Branch):
        taken = resolve(terminator.target)
        not_taken = resolve(terminator.otherwise)
        cond = terminator.cond
        if cond == "TRUE":
            def seq_always(b):
                b.upc = taken

            return seq_always
        test = _COND_TESTS.get(cond)
        if test is None:
            # condition_holds would raise identically for every lane.
            raise _PeelAll(f"condition {cond!r}")
        flag, expected = test

        def seq_branch(b):
            flag_vec = b.flags.get(flag)
            if flag_vec is None:
                b.upc = taken if expected == 0 else not_taken
                return
            t = (flag_vec == expected) * 1
            b.settle(t * taken + (1 - t) * not_taken, "branch")

        return seq_branch

    if isinstance(terminator, Multiway):
        read_value = _b_src_reader(state, terminator.reg)
        cases = tuple(
            (case.matches, resolve(case.target)) for case in terminator.cases
        )
        default = resolve(terminator.default)

        def seq_multiway(b):
            values = read_value(b)
            targets = [0] * b.n
            for lane in b.live_lanes():
                value = int(values[lane])
                for matches, target in cases:
                    if matches(value):
                        targets[lane] = target
                        break
                else:
                    targets[lane] = default
            b.settle(b.ops.vector(targets), "multiway")

        return seq_multiway

    if isinstance(terminator, Call):
        return_to = resolve(terminator.next)
        procedure = base + resident.program.procedures[terminator.proc]
        depth = state.machine.micro_stack_depth

        def seq_call(b):
            if len(b.micro_stack) >= depth:
                # Shared stack: every lane overflows identically.
                raise _PeelAll("stack-overflow")
            b.micro_stack.append(return_to)
            b.upc = procedure

        return seq_call

    if isinstance(terminator, Ret):
        def seq_ret(b):
            if not b.micro_stack:
                raise _PeelAll("stack-underflow")
            b.upc = b.micro_stack.pop()

        return seq_ret

    if isinstance(terminator, Exit):
        value = terminator.value
        if value is None:
            def seq_exit(b):
                b.halted = True

            return seq_exit
        read_value = _b_src_reader(state, value)

        def seq_exit_value(b):
            b.halted = True
            b.exit_value = read_value(b)

        return seq_exit_value

    raise _PeelAll(f"terminator {terminator!r}")


class _BatchPlan:
    """One control-store word, lowered for lockstep execution."""

    __slots__ = ("phases", "cycles", "sequence")

    def __init__(self, phases, cycles, sequence):
        self.phases = phases
        self.cycles = cycles
        self.sequence = sequence

    def execute(self, b: BatchedState) -> None:
        """Same commit discipline as the scalar plan: within a phase
        all reads see phase-entry state, then register writes commit,
        then memory actions, then flag updates."""
        for steps in self.phases:
            reg_writes: list = []
            flag_writes: dict = {}
            memory_ops: list[Callable[[], None]] = []
            for step in steps:
                step(b, reg_writes, flag_writes, memory_ops)
            if reg_writes:
                registers = b.registers
                for target, mask, value in reg_writes:
                    committed = value & mask
                    if PLANT_LANE_XOR:
                        committed[0] = int(committed[0]) ^ PLANT_LANE_XOR
                    registers[target] = committed
            for action in memory_ops:
                action()
            if flag_writes:
                b.flags.update(flag_writes)


def _b_decode_word(state, loaded, resident, address) -> _BatchPlan:
    machine = state.machine
    instruction = loaded.instruction
    phases = []
    for group in instruction.phase_groups(machine):
        steps = tuple(
            step
            for step in (_b_decode_op(state, placed) for placed in group)
            if step is not None
        )
        if steps:
            phases.append(steps)
    return _BatchPlan(
        phases=tuple(phases),
        cycles=instruction.cached_cycles(machine),
        sequence=_b_decode_terminator(
            state, instruction.terminator, address, resident
        ),
    )


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------
def batch_refusal(
    machine,
    *,
    lanes: int,
    engine: str = "decoded",
    injector: bool = False,
    recorder: bool = False,
    trace: bool = False,
    interrupt_every: int | None = None,
    deadline_s: float | None = None,
) -> str | None:
    """Why a batch must run scalar — None when lockstep may engage.

    Mirrors the trace JIT's disengage discipline: anything that needs
    per-microinstruction visibility (an injector substituting words, a
    profile recorder, a trace sink, an interrupt source) or per-lane
    wall-clock accounting refuses batching, as does a banked register
    file (bank pointers are per-lane dynamic state the lockstep
    decoder does not model).
    """
    if lanes <= 1:
        return "batch=1"
    if engine != "decoded":
        return f"engine={engine}"
    if injector:
        return "injector"
    if recorder:
        return "recorder"
    if trace:
        return "trace"
    if interrupt_every:
        return "interrupt_every"
    if deadline_s is not None:
        return "deadline"
    files = machine.registers
    if files.windows or files.bank_pointer:
        return "banked-windows"
    return None


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _run_lockstep(
    machine, loaded, cases, *, ops, paging, max_cycles,
) -> list[LaneOutcome | None]:
    """Drive one homogeneous chunk in lockstep.

    Returns one entry per case: a :class:`LaneOutcome` for lanes that
    ran to EXIT inside the batch, None for lanes that peeled (the
    caller replays those scalar).
    """
    store = ControlStore(machine)
    resident = store.load(loaded)
    n = len(cases)
    b = BatchedState(machine, n, ops, paging=paging)
    for lane, case in enumerate(cases):
        # A lane whose initial pokes are invalid (unknown register,
        # windowed name, out-of-range load) peels to the scalar path,
        # which raises the identical error for that case alone —
        # live-traffic batches must never let one bad lane take down
        # its neighbours.
        try:
            for name, value in case.registers.items():
                b.init_register(lane, name, value)
            for address, value in case.memory.items():
                b.memory.load(lane, address, [value])
        except (MicroTrap, SimulationError):
            b.peel(lane, "init")
    for name, value in resident.program.constants.items():
        b.poke_constant(name, value)
    b.upc = resident.entry

    plans: dict[int, _BatchPlan] = {}
    decodes = 0
    instructions = 0
    try:
        while not b.halted and b.any_live():
            if b.cycles > max_cycles:
                # Scalar runs raise SimulationLimitError at exactly
                # this microinstruction boundary; the replay does too.
                b.peel_all("budget")
                break
            plan = plans.get(b.upc)
            if plan is None:
                plan = _b_decode_word(
                    b, store.fetch(b.upc), resident, b.upc
                )
                plans[b.upc] = plan
                decodes += 1
            plan.execute(b)
            if not b.any_live():
                break
            b.cycles += plan.cycles
            instructions += 1
            plan.sequence(b)
    except _PeelAll as stop:
        b.peel_all(stop.reason)
    except Exception:
        # Anything unforeseen (a fetch outside the resident, a decode
        # the scalar engine would reject): the scalar path is the
        # reference — replay every lane rather than guess.
        b.peel_all("error")

    outcomes: list[LaneOutcome | None] = [None] * n
    if not b.any_live():
        return outcomes
    # Per-run plan-cache counters, synthesised to match what a fresh
    # scalar simulator reports: misses are the distinct addresses
    # decoded, hits are the remaining executed microinstructions.
    plan_counters = {
        "hits": max(0, instructions - decodes),
        "misses": decodes,
        "invalidations": 0,
    }
    for lane in b.live_lanes():
        exit_value = (
            int(b.exit_value[lane]) if b.exit_value is not None else None
        )
        outcomes[lane] = LaneOutcome(
            machine,
            result=RunResult(
                cycles=b.cycles,
                instructions=instructions,
                traps=0,
                interrupts_serviced=0,
                interrupt_wait_cycles=0,
                exit_value=exit_value,
                plan_cache=dict(plan_counters),
            ),
            error=None,
            registers={
                name: int(vec[lane]) for name, vec in b.registers.items()
            },
            flags={name: int(vec[lane]) for name, vec in b.flags.items()},
            scratchpad=b.scratchpads[lane],
            memory=b.memory.lane_view(lane),
            peeled=False,
        )
    return outcomes


def _run_scalar(
    machine, loaded, case, *, engine, paging, trap_service,
    interrupt_handler, max_cycles, peeled,
) -> LaneOutcome:
    """One case on the scalar engine — the peel-off (and batch=1) path."""
    store = ControlStore(machine)
    store.load(loaded)
    memory = MainMemory(paging_enabled=paging)
    state = MachineState(machine, memory=memory)
    simulator = Simulator(
        machine, store, state=state, engine=engine,
        trap_service=trap_service, interrupt_handler=interrupt_handler,
    )
    result = None
    error = None
    try:
        for name, value in case.registers.items():
            state.write_reg(name, value)
        for address, value in case.memory.items():
            memory.load_words(address, [value])
        result = simulator.run(loaded.name, max_cycles=max_cycles)
    except Exception as exc:
        # Invalid pokes are captured per lane too, so a batch caller
        # (e.g. a serve worker) observes them in ``LaneOutcome.error``
        # exactly like any other per-case failure.
        error = exc
    return LaneOutcome(
        machine,
        result=result,
        error=error,
        registers=dict(state.registers),
        flags=dict(state.flags),
        scratchpad=state.scratchpad,
        memory=memory,
        peeled=peeled,
    )


def run_cases(
    machine,
    loaded,
    cases,
    *,
    batch: int = 1,
    engine: str = "decoded",
    paging: bool = False,
    trap_service=None,
    interrupt_handler=None,
    max_cycles: int = 1_000_000,
    backend: str = "auto",
) -> list[LaneOutcome]:
    """Run homogeneous cases through the lockstep driver, batch-wise.

    Cases are chunked into batches of ``batch`` lanes; lanes that peel
    (or a refused admission — see :func:`batch_refusal`) replay on the
    scalar decoded engine, and results merge back **in case order**.
    ``batch=1`` is exactly today's scalar behaviour.  Exceptions a
    lane's run raises are captured per lane in
    :attr:`LaneOutcome.error`, never propagated, so a batch with one
    runaway lane still reports the other N-1.
    """
    reason = batch_refusal(machine, lanes=batch, engine=engine)
    outcomes: list[LaneOutcome | None] = [None] * len(cases)
    if reason is None:
        ops = _ops(backend)
        for start in range(0, len(cases), batch):
            chunk = list(cases[start:start + batch])
            for offset, lane in enumerate(_run_lockstep(
                machine, loaded, chunk, ops=ops, paging=paging,
                max_cycles=max_cycles,
            )):
                outcomes[start + offset] = lane
    for index, case in enumerate(cases):
        if outcomes[index] is None:
            outcomes[index] = _run_scalar(
                machine, loaded, case, engine=engine, paging=paging,
                trap_service=trap_service,
                interrupt_handler=interrupt_handler,
                max_cycles=max_cycles, peeled=reason is None,
            )
    return outcomes
