"""Machine state: registers, flags, memories, microsequencer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.machine.machine import MicroArchitecture
from repro.sim.memory import MainMemory, Scratchpad


@dataclass
class MachineState:
    """The complete dynamic state of a simulated machine."""

    machine: MicroArchitecture
    memory: MainMemory = field(default_factory=MainMemory)
    registers: dict[str, int] = field(default_factory=dict)
    flags: dict[str, int] = field(default_factory=dict)
    scratchpad: Scratchpad | None = None
    upc: int = 0
    micro_stack: list[int] = field(default_factory=list)
    interrupt_pending: bool = False
    halted: bool = False
    exit_value: int | None = None
    cycles: int = 0

    def __post_init__(self) -> None:
        if self.scratchpad is None:
            self.scratchpad = Scratchpad(self.machine.scratchpad_size)
        self.reset_registers()

    def reset_registers(self) -> None:
        """Power-on register and flag values."""
        self.registers = {
            register.name: register.reset for register in self.machine.registers
        }
        self.flags = {flag: 0 for flag in self.machine.flags}

    # -- register access (resolves banked windows) -----------------------
    def _resolve(self, name: str) -> str:
        files = self.machine.registers
        if files.is_window(name):
            pointer = files.bank_pointer
            if pointer is None:
                raise SimulationError(f"window {name!r} but no bank pointer")
            return files.resolve_window(name, self.registers[pointer])
        return name

    def read_reg(self, name: str) -> int:
        physical = self._resolve(name)
        try:
            return self.registers[physical]
        except KeyError:
            raise SimulationError(f"unknown register {name!r}") from None

    def write_reg(self, name: str, value: int) -> None:
        physical = self._resolve(name)
        register = self.machine.registers[physical]
        if register.readonly:
            raise SimulationError(f"write to read-only register {name!r}")
        self.registers[physical] = value & register.mask

    def poke_reg(self, name: str, value: int) -> None:
        """Loader-level register write (allowed on constant ROM)."""
        register = self.machine.registers[name]
        self.registers[name] = value & register.mask

    def snapshot_registers(self) -> dict[str, int]:
        return dict(self.registers)

    def restore_registers(self, snapshot: dict[str, int]) -> None:
        self.registers = dict(snapshot)

    # -- stack --------------------------------------------------------------
    def push_return(self, address: int) -> None:
        if len(self.micro_stack) >= self.machine.micro_stack_depth:
            raise SimulationError(
                f"micro stack overflow (depth {self.machine.micro_stack_depth})"
            )
        self.micro_stack.append(address)

    def pop_return(self) -> int:
        if not self.micro_stack:
            raise SimulationError("micro stack underflow")
        return self.micro_stack.pop()
