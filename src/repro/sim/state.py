"""Machine state: registers, flags, memories, microsequencer.

Two layers live here.  :class:`StateBackend` is the *protocol* the
execution engines consume — the register/flag/memory surface plus the
trap and interrupt bookkeeping that :mod:`repro.sim.simulator` and
:mod:`repro.sim.decode` read and write.  :class:`MachineState` is the
scalar implementation (one case, plain dicts); the batched
struct-of-arrays state in :mod:`repro.sim.batch` drives N cases in
lockstep behind the same step semantics and peels divergent lanes
back onto a scalar :class:`MachineState`.  The protocol is
structural — implementations never subclass it, so the scalar hot
loop keeps its plain-dataclass attribute access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.machine.machine import MicroArchitecture
from repro.sim.memory import MainMemory, Scratchpad


@runtime_checkable
class StateBackend(Protocol):
    """What an execution engine needs from a machine state.

    Attribute surface: ``machine``, a swappable ``memory``, the
    ``registers``/``flags`` stores, the ``scratchpad`` spill target,
    the microsequencer (``upc``, ``micro_stack``, ``halted``,
    ``exit_value``, ``cycles``) and the ``interrupt_pending`` latch.
    Methods cover banked register access and the §2.1.5 trap
    bookkeeping (entry snapshots, restart restore, return stack).
    """

    machine: MicroArchitecture
    memory: MainMemory
    registers: dict[str, int]
    flags: dict[str, int]
    scratchpad: Scratchpad | None
    upc: int
    micro_stack: list[int]
    interrupt_pending: bool
    halted: bool
    exit_value: int | None
    cycles: int

    def read_reg(self, name: str) -> int: ...

    def write_reg(self, name: str, value: int) -> None: ...

    def poke_reg(self, name: str, value: int) -> None: ...

    def snapshot_registers(self) -> dict[str, int]: ...

    def restore_registers(self, snapshot: dict[str, int]) -> None: ...

    def push_return(self, address: int) -> None: ...

    def pop_return(self) -> int: ...


@dataclass
class MachineState:
    """The complete dynamic state of a simulated machine.

    The scalar :class:`StateBackend`: one case, plain dict stores.
    """

    machine: MicroArchitecture
    memory: MainMemory = field(default_factory=MainMemory)
    registers: dict[str, int] = field(default_factory=dict)
    flags: dict[str, int] = field(default_factory=dict)
    scratchpad: Scratchpad | None = None
    upc: int = 0
    micro_stack: list[int] = field(default_factory=list)
    interrupt_pending: bool = False
    halted: bool = False
    exit_value: int | None = None
    cycles: int = 0

    def __post_init__(self) -> None:
        if self.scratchpad is None:
            self.scratchpad = Scratchpad(self.machine.scratchpad_size)
        self.reset_registers()

    def reset_registers(self) -> None:
        """Power-on register and flag values."""
        self.registers = {
            register.name: register.reset for register in self.machine.registers
        }
        self.flags = {flag: 0 for flag in self.machine.flags}

    # -- register access (resolves banked windows) -----------------------
    def _resolve(self, name: str) -> str:
        files = self.machine.registers
        if files.is_window(name):
            pointer = files.bank_pointer
            if pointer is None:
                raise SimulationError(f"window {name!r} but no bank pointer")
            return files.resolve_window(name, self.registers[pointer])
        return name

    def read_reg(self, name: str) -> int:
        physical = self._resolve(name)
        try:
            return self.registers[physical]
        except KeyError:
            raise SimulationError(f"unknown register {name!r}") from None

    def write_reg(self, name: str, value: int) -> None:
        physical = self._resolve(name)
        register = self.machine.registers[physical]
        if register.readonly:
            raise SimulationError(f"write to read-only register {name!r}")
        self.registers[physical] = value & register.mask

    def poke_reg(self, name: str, value: int) -> None:
        """Loader-level register write (allowed on constant ROM)."""
        register = self.machine.registers[name]
        self.registers[name] = value & register.mask

    def snapshot_registers(self) -> dict[str, int]:
        return dict(self.registers)

    def restore_registers(self, snapshot: dict[str, int]) -> None:
        self.registers = dict(snapshot)

    # -- stack --------------------------------------------------------------
    def push_return(self, address: int) -> None:
        if len(self.micro_stack) >= self.machine.micro_stack_depth:
            raise SimulationError(
                f"micro stack overflow (depth {self.machine.micro_stack_depth})"
            )
        self.micro_stack.append(address)

    def pop_return(self) -> int:
        if not self.micro_stack:
            raise SimulationError("micro stack underflow")
        return self.micro_stack.pop()
