"""Microarchitecture simulator (survey substrate S7)."""

from repro.sim.memory import MainMemory, Scratchpad
from repro.sim.semantics import STATEFUL_OPS, condition_holds, evaluate
from repro.sim.simulator import RunResult, Simulator
from repro.sim.state import MachineState
from repro.sim.trace import TraceJIT, TraceStats

__all__ = [
    "MachineState",
    "MainMemory",
    "RunResult",
    "STATEFUL_OPS",
    "Scratchpad",
    "Simulator",
    "TraceJIT",
    "TraceStats",
    "condition_holds",
    "evaluate",
]
