"""Microarchitecture simulator (survey substrate S7)."""

from repro.sim.batch import (
    BatchCase,
    BatchedState,
    LaneOutcome,
    batch_refusal,
    run_cases,
)
from repro.sim.memory import MainMemory, Scratchpad
from repro.sim.semantics import STATEFUL_OPS, condition_holds, evaluate
from repro.sim.simulator import RunResult, Simulator
from repro.sim.state import MachineState, StateBackend
from repro.sim.trace import TraceJIT, TraceStats

__all__ = [
    "BatchCase",
    "BatchedState",
    "LaneOutcome",
    "MachineState",
    "MainMemory",
    "RunResult",
    "STATEFUL_OPS",
    "Scratchpad",
    "Simulator",
    "StateBackend",
    "TraceJIT",
    "TraceStats",
    "batch_refusal",
    "condition_holds",
    "evaluate",
    "run_cases",
]
