"""The difftest campaign loop: generate, cross-check, shrink, report.

One campaign walks a seeded case stream round-robin over the selected
languages and machines: case ``i`` gets language ``langs[i % L]``,
machine ``machines[(i // L) % M]`` and per-case seed
``seed * 1_000_003 + i`` — so any reported case is reproducible from
the campaign seed and its index alone, and every (language, machine)
cell is visited evenly regardless of budget.

Axis thinning keeps the budget meaningful: ``engine``, ``traced``
and ``restart`` run on every case (they are one extra execution
each), ``cache`` on every 4th (disk round trips) and ``shards`` on
every 16th (each one is two full fault campaigns).  The schedule is a pure function of the
case index, so two runs with the same seed and budget check exactly
the same pairs.

Every divergence is shrunk with :func:`repro.difftest.reducer.
reduce_source` — the predicate re-runs the *same axis* on the
candidate text, so the reduced program is a true reproducer, not just
a smaller program — and written to the corpus directory as a
self-contained JSON repro file.

:func:`self_check` closes the loop on the harness itself: it plants a
semantic bug into the pre-decoded engine (monkeypatching one entry of
``repro.sim.decode._LOGIC``) and asserts the campaign both *finds*
and *shrinks* it, then plants a one-bit miscompile into the trace
stitcher (``repro.sim.trace.PLANT_RESULT_XOR``) and asserts the
``traced`` axis catches that too, then corrupts one lane of the
batched lockstep driver (``repro.sim.batch.PLANT_LANE_XOR``) and
asserts the ``batched`` axis reports it.  A difftest harness that
cannot detect a planted miscompile is worse than none — it
manufactures confidence.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.difftest.generators import generate_case
from repro.difftest.oracle import Divergence, run_axis
from repro.difftest.reducer import reduce_source
from repro.obs.aggregate import CampaignMetrics
from repro.obs.tracer import NULL_TRACER
from repro.registry import build_machine, generator_names

DEFAULT_MACHINES = ("HM1", "CM1", "VM1")
DEFAULT_AXES = ("engine", "traced", "batched", "cache", "restart", "shards")
#: axis -> run it on every Nth case.
_AXIS_EVERY = {
    "engine": 1, "traced": 1, "restart": 1, "batched": 2, "cache": 4,
    "shards": 16,
}


@dataclass
class DifftestReport:
    """Outcome of one differential-testing campaign."""

    seed: int
    budget: int
    langs: tuple[str, ...]
    machines: tuple[str, ...]
    axes: tuple[str, ...]
    cases_run: int = 0
    #: axis name -> number of pairs actually executed.
    pairs_run: dict = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    #: Repro files written, in divergence order.
    corpus_files: list[str] = field(default_factory=list)
    #: Shard-mergeable rollup of the campaign's tallies (``cases``,
    #: ``pairs.<axis>``, ``divergences.<axis>`` in the ``difftest``
    #: counter family) — merges with fault-campaign rollups into one
    #: fleet-level :class:`CampaignMetrics`.
    metrics: CampaignMetrics = field(default_factory=CampaignMetrics)

    @property
    def clean(self) -> bool:
        return not self.divergences

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "langs": list(self.langs),
            "machines": list(self.machines),
            "axes": list(self.axes),
            "cases_run": self.cases_run,
            "pairs_run": dict(sorted(self.pairs_run.items())),
            "divergences": [
                {
                    "lang": d.case.lang,
                    "machine": d.case.machine,
                    "seed": d.case.seed,
                    "axis": d.axis,
                    "mismatches": list(d.mismatches),
                    "source": d.case.source,
                    "reduced_source": d.reduced_source,
                }
                for d in self.divergences
            ],
            "corpus_files": list(self.corpus_files),
            "metrics": self.metrics.to_json(),
        }

    def render(self) -> str:
        lines = [
            f"difftest: seed={self.seed} budget={self.budget} "
            f"langs={','.join(self.langs)} "
            f"machines={','.join(self.machines)}",
            "  pairs: " + "  ".join(
                f"{axis}={self.pairs_run.get(axis, 0)}"
                for axis in self.axes
            ),
        ]
        if self.clean:
            lines.append(
                f"  {self.cases_run} cases, no divergence on any axis"
            )
        else:
            lines.append(
                f"  {self.cases_run} cases, "
                f"{len(self.divergences)} DIVERGENCE(S):"
            )
            for divergence, path in zip(
                self.divergences,
                self.corpus_files + [None] * len(self.divergences),
            ):
                lines.append(f"    {divergence.summary()}")
                for mismatch in divergence.mismatches[:4]:
                    lines.append(f"      {mismatch}")
                if path:
                    lines.append(f"      repro: {path}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _shrink(divergence: Divergence, workdir) -> str:
    """Reduce a diverging case against its own axis."""
    case, axis = divergence.case, divergence.axis

    def still_diverges(text: str) -> bool:
        try:
            return run_axis(axis, case.with_source(text),
                            workdir=workdir) is not None
        except Exception:
            return False

    return reduce_source(case.source, still_diverges)


def _write_repro(divergence: Divergence, corpus_dir: Path) -> str:
    case = divergence.case
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / (
        f"div-{case.lang}-{case.machine}-{case.seed}-{divergence.axis}.json"
    )
    path.write_text(json.dumps(
        {
            "lang": case.lang,
            "machine": case.machine,
            "seed": case.seed,
            "axis": divergence.axis,
            "mismatches": list(divergence.mismatches),
            "source": case.source,
            "reduced_source": divergence.reduced_source,
            "repro": (
                f"python -m repro difftest --seed {case.seed} --budget 1 "
                f"--langs {case.lang} --machines {case.machine} "
                f"--axes {divergence.axis}"
            ),
        },
        indent=2,
    ) + "\n")
    return str(path)


def run_difftest(
    *,
    seed: int = 0,
    budget: int = 200,
    langs: tuple[str, ...] | None = None,
    machines: tuple[str, ...] = DEFAULT_MACHINES,
    axes: tuple[str, ...] = DEFAULT_AXES,
    corpus_dir: str | Path | None = None,
    reduce: bool = True,
    size: int | None = None,
    batch: int = 64,
    tracer=NULL_TRACER,
) -> DifftestReport:
    """Run one differential-testing campaign.

    ``budget`` counts generated cases, not axis pairs: each case runs
    the subset of ``axes`` its index selects (see ``_AXIS_EVERY``).
    Divergent cases are shrunk (``reduce=False`` skips it, for speed
    in self-tests) and, when ``corpus_dir`` is given, written out as
    self-contained JSON reproducers.

    ``batch`` sizes the ``batched`` axis's lockstep side (lanes per
    dispatch); it does not enter the report, so reports stay
    byte-identical across batch sizes — that identity is the axis's
    promise.
    """
    langs = tuple(langs) if langs else tuple(generator_names())
    machines = tuple(machines)
    axes = tuple(axes)
    report = DifftestReport(
        seed=seed, budget=budget, langs=langs, machines=machines, axes=axes,
    )
    corpus = Path(corpus_dir) if corpus_dir is not None else None
    with tempfile.TemporaryDirectory(prefix="difftest-") as scratch:
        workdir = Path(scratch)
        for index in range(budget):
            lang = langs[index % len(langs)]
            machine_name = machines[(index // len(langs)) % len(machines)]
            case_seed = seed * 1_000_003 + index
            case = generate_case(
                lang, build_machine(machine_name), case_seed, size=size,
            )
            report.cases_run += 1
            report.metrics.difftest.inc("cases")
            case_axes = [
                axis for axis in axes
                if index % _AXIS_EVERY.get(axis, 1) == 0
            ]
            if tracer.enabled:
                tracer.instant(
                    "difftest.case", cat="difftest",
                    lang=lang, machine=machine_name, seed=case_seed,
                    axes=",".join(case_axes),
                )
            for axis in case_axes:
                report.pairs_run[axis] = report.pairs_run.get(axis, 0) + 1
                report.metrics.difftest.inc(f"pairs.{axis}")
                divergence = run_axis(
                    axis, case, workdir=workdir, batch=batch,
                )
                if divergence is None:
                    continue
                report.metrics.difftest.inc(f"divergences.{axis}")
                if reduce:
                    divergence.reduced_source = _shrink(divergence, workdir)
                if tracer.enabled:
                    tracer.instant(
                        "difftest.divergence", cat="difftest",
                        lang=lang, machine=machine_name, seed=case_seed,
                        axis=axis, mismatches=len(divergence.mismatches),
                    )
                report.divergences.append(divergence)
                if corpus is not None:
                    report.corpus_files.append(
                        _write_repro(divergence, corpus)
                    )
    return report


# ----------------------------------------------------------------------
def self_check(
    *,
    seed: int = 0,
    budget: int = 10,
    size: int | None = None,
    tracer=NULL_TRACER,
) -> DifftestReport:
    """Prove the harness detects and shrinks planted engine bugs.

    Two plants, two phases.  Phase one plants ``xor ->
    xor-then-flip-bit-0`` into the pre-decoded engine's operator
    table (the interpretive engine is untouched) and runs an
    engine-axis campaign.  Every generated program ends in an xor
    fold, so the bug is reachable from every case; the campaign must
    come back with at least one divergence, and the *first* one is
    then shrunk (reducing every planted hit would prove nothing more
    and cost minutes) — the reduced program must still diverge.
    Phase two plants a one-bit miscompile into the trace *stitcher*
    (``repro.sim.trace.PLANT_RESULT_XOR``: every inlined ALU result
    is XORed with 1 at stitch time) and runs a ``traced``-axis
    campaign — the decoded reference is untouched, so only the
    stitched superinstructions are wrong, and the axis must report a
    divergence.  Phase three corrupts *one lane* of the batched
    lockstep driver (``repro.sim.batch.PLANT_LANE_XOR``: lane 0's
    value is XORed at every batched register commit) and runs a
    ``batched``-axis campaign — lanes that peel to the scalar engine
    are immune by construction, so a detection here proves the axis
    really compares the lockstep data path, not just the peel path.
    Raises ``AssertionError`` otherwise.  Also reachable as ``python
    -m repro difftest --self-check``.
    """
    import repro.sim.batch as batch_mod
    import repro.sim.decode as decode
    import repro.sim.trace as trace

    # Small fixed-size programs: the plant is reachable from any case
    # (every program ends in an xor fold), and shrinking a full-size
    # generated program costs minutes of oracle re-runs for no extra
    # evidence.
    size = 10 if size is None else size
    pristine = decode._LOGIC["xor"]
    decode._LOGIC["xor"] = lambda a, b: (a ^ b) ^ 1
    try:
        report = run_difftest(
            seed=seed, budget=budget, axes=("engine",),
            reduce=False, size=size, tracer=tracer,
        )
        if not report.divergences:
            raise AssertionError(
                "self-check: planted decoded-engine xor bug was not "
                "detected"
            )
        first = report.divergences[0]
        first.reduced_source = _shrink(first, workdir=None)
        reduced = first.reduced_source
        if not reduced or len(reduced) > len(first.case.source):
            raise AssertionError(
                f"self-check: divergence was not shrunk ({first.summary()})"
            )
        if run_axis("engine", first.case.with_source(reduced)) is None:
            raise AssertionError(
                "self-check: reduced program does not reproduce the "
                "planted divergence"
            )
    finally:
        decode._LOGIC["xor"] = pristine
    if run_axis("engine", first.case.with_source(reduced)) is not None:
        raise AssertionError(
            "self-check: reduced program still diverges on the pristine "
            "engine — a real engine bug is masquerading as the plant"
        )
    # Phase two: miscompile the trace stitcher by one bit.  No shrink
    # pass here — a planted trace bug derails loop control, so each
    # diverging run burns its whole cycle budget and re-running the
    # oracle dozens of times per reduction step buys no new evidence.
    trace.PLANT_RESULT_XOR = 1
    try:
        traced_report = run_difftest(
            seed=seed, budget=budget, axes=("traced",),
            reduce=False, size=size, tracer=tracer,
        )
        if not traced_report.divergences:
            raise AssertionError(
                "self-check: planted trace-stitcher bug was not detected"
            )
        planted = traced_report.divergences[0]
    finally:
        trace.PLANT_RESULT_XOR = 0
    if run_axis("traced", planted.case) is not None:
        raise AssertionError(
            "self-check: planted-trace case still diverges with the "
            "pristine stitcher — a real trace-JIT bug is masquerading "
            "as the plant"
        )
    report.divergences.extend(traced_report.divergences)
    for axis, pairs in traced_report.pairs_run.items():
        report.pairs_run[axis] = report.pairs_run.get(axis, 0) + pairs
    # Phase three: corrupt one lane of the batched lockstep driver.
    # No shrink pass, same economics as phase two.  The budget floor
    # is higher than the other phases': a corrupted lane often derails
    # its own control flow (a wrong branch, a runaway loop) and peels
    # the batch to the scalar engine, where the plant cannot reach —
    # only cases whose corruption stays data-only can detect it, so
    # the phase needs more shots on goal.
    # Detection needs only the corrupt leader plus one surviving
    # follower, so a small lane count proves the same property while
    # a derailed batch peels 4 scalar replays instead of 64.  A
    # corrupted loop counter often spins until the cycle budget, so
    # the budget is cut for the phase — both sides of every pair see
    # the same cut, which keeps non-planted comparisons clean.
    import repro.difftest.oracle as oracle_mod

    batch_mod.PLANT_LANE_XOR = 1
    saved_max_cycles = oracle_mod.MAX_CYCLES
    oracle_mod.MAX_CYCLES = 50_000
    try:
        batched_report = run_difftest(
            seed=seed, budget=max(budget, 30), axes=("batched",),
            reduce=False, size=size, tracer=tracer, batch=4,
        )
        if not batched_report.divergences:
            raise AssertionError(
                "self-check: planted batch-lane corruption was not "
                "detected"
            )
        lane_planted = batched_report.divergences[0]
    finally:
        batch_mod.PLANT_LANE_XOR = 0
        oracle_mod.MAX_CYCLES = saved_max_cycles
    if run_axis("batched", lane_planted.case) is not None:
        raise AssertionError(
            "self-check: planted-lane case still diverges with the "
            "pristine batched driver — a real lockstep bug is "
            "masquerading as the plant"
        )
    report.divergences.extend(batched_report.divergences)
    for axis, pairs in batched_report.pairs_run.items():
        report.pairs_run[axis] = report.pairs_run.get(axis, 0) + pairs
    return report
