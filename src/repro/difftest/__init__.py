"""Differential-testing subsystem (survey substrate S19).

The toolkit carries a growing set of *equivalence promises*: the
decoded and interpretive simulator engines are observably identical,
a cache hit returns exactly what a fresh compile would, the §2.1.5
restart-safety transform preserves trap-free semantics, and sharded
campaign reports are byte-identical to serial ones.  Each promise is
pinned by hand-written golden programs — a handful of points in a
very large program space.

``repro.difftest`` makes those promises *mechanically* testable, the
way N-version differential execution does for compilers (Csmith and
friends): seeded per-language source generators produce random but
deterministic programs for every registered front end, an oracle runs
each program under configurable **axis pairs** and diffs every
observable (control words, cycle counts, final state, profiles), and
a greedy reducer shrinks any diverging program to a minimal
self-contained reproducer.

Entry points:

* :func:`repro.difftest.harness.run_difftest` — the campaign loop
  (also ``python -m repro difftest``);
* :func:`repro.difftest.oracle.run_axis` — one case, one axis;
* :func:`repro.difftest.reducer.reduce_source` — shrink a reproducer;
* :mod:`repro.difftest.generators` — the per-language generators,
  registered in :mod:`repro.registry` via ``register_generator``.
"""

from repro.difftest.generators import GeneratedCase, generate_case
from repro.difftest.harness import DifftestReport, run_difftest, self_check
from repro.difftest.oracle import (
    AXES,
    Divergence,
    Observation,
    run_axis,
)
from repro.difftest.reducer import reduce_source

__all__ = [
    "AXES",
    "DifftestReport",
    "Divergence",
    "GeneratedCase",
    "Observation",
    "generate_case",
    "reduce_source",
    "run_axis",
    "run_difftest",
    "self_check",
]
