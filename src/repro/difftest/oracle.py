"""Axis oracles: run one case two ways and diff every observable.

Each **axis** pins one of the toolkit's equivalence promises by
running the *same* generated program under two configurations that
must be observably identical:

``engine``
    One compilation, executed by the interpretive and the pre-decoded
    engines.  Everything must match: final registers, flags, memory,
    exit value, cycle counts and the execution profile (modulo the
    ``decodes`` counter, which *defines* the engines' difference).
    Memory-touching cases run with demand paging enabled and a paging
    trap service, so §2.1.5 microtrap boundaries are part of the
    compared behaviour, not an untested corner.

``traced``
    The pre-decoded engine against the trace JIT (``engine=traced``,
    :mod:`repro.sim.trace`) with the hot threshold dropped to 1 so
    the short bounded loops difftest generates actually compile and
    dispatch.  The comparison is as strict as ``engine``: a stitched
    superinstruction that drifts from the decoded engine in *any*
    observable — cycles, traps, registers, memory, even the recorded
    profile — is a miscompile.

``cache``
    A fresh compile against a disk-tier pickle round trip (two cache
    instances sharing one directory, so the second probe *must* come
    off disk).  Words, entry, allocation and a full execution must
    match — a cache hit promises exactly what a fresh compile returns.

``restart``
    ``restart_safe=False`` against ``restart_safe=True``.  The
    transform may reschedule and add fix-up code, so words, cycles and
    profiles legitimately differ; trap-free *semantics* must not:
    exit value, memory image, trap counts and — for front ends whose
    variables name physical registers — final register values.

``shards``
    One fault campaign over the case, serial vs ``jobs=2``; the JSON
    reports must be byte-identical (the determinism contract of
    ``repro.faults``).

Axes never raise on behavioural differences — they return a
:class:`Divergence` carrying rendered mismatches.  A *crash* in
compile or run is itself an observable: it is captured into
``Observation.error`` and diverges when the other side disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.loader import ControlStore
from repro.cache import CompileCache
from repro.difftest.generators import GeneratedCase
from repro.obs.timeline import TraceRecorder
from repro.obs.tracer import NULL_TRACER
from repro.registry import build_machine, get_language
from repro.sim import Simulator
from repro.sim.batch import DEFAULT_LANES, BatchCase, run_cases
from repro.sim.memory import MainMemory
from repro.sim.state import MachineState

#: Cycle budget per executed case; generated loops are bounded, so a
#: well-behaved case finishes in a few thousand cycles and anything
#: approaching this is itself a bug worth surfacing.
MAX_CYCLES = 2_000_000


@dataclass(frozen=True)
class Observation:
    """Everything the oracle can see from one compile-and-run.

    ``registers`` is keyed by the case's *source-level* ``observe``
    names, resolved through the allocation mapping, so observations
    stay meaningful when two sides of an axis compile differently.
    ``error`` is the exception class name when compile or execution
    raised; every other field is then empty.
    """

    words: tuple[int, ...] = ()
    entry: int = 0
    mapping: tuple[tuple[str, str], ...] = ()
    cycles: int = 0
    instructions: int = 0
    traps: int = 0
    interrupts: int = 0
    exit_value: int | None = None
    registers: tuple[tuple[str, int | None], ...] = ()
    flags: tuple[tuple[str, int], ...] = ()
    memory: tuple[int, ...] | None = None
    profile: tuple[tuple[str, object], ...] = ()
    error: str | None = None


@dataclass
class Divergence:
    """One confirmed observable difference on one axis."""

    case: GeneratedCase
    axis: str
    mismatches: list[str] = field(default_factory=list)
    #: Populated by the harness after reduction.
    reduced_source: str | None = None

    def summary(self) -> str:
        fields = ", ".join(m.split(":", 1)[0] for m in self.mismatches)
        return (
            f"{self.case.lang}/{self.case.machine} seed={self.case.seed} "
            f"axis={self.axis}: {fields} differ"
        )


# ----------------------------------------------------------------------
# Compile / execute
# ----------------------------------------------------------------------
def _paging_service(state, trap):
    """Map the faulted page (address parsed from the trap detail)."""
    address = int(trap.detail.split("address ")[1].rstrip(")"))
    state.memory.map_address(address)


def compile_case(
    case: GeneratedCase,
    machine,
    *,
    restart_safe: bool = False,
    cache=None,
    tracer=NULL_TRACER,
):
    """Compile a generated case through its registered pipeline."""
    return get_language(case.lang).compile(
        case.source, machine,
        restart_safe=restart_safe, cache=cache, tracer=tracer,
    )


def _resolve_observed(case: GeneratedCase, result, state) -> list:
    """Final values of the case's observed source-level names."""
    observed = []
    for name in case.observe:
        if case.physical_observe:
            observed.append((name, state.read_reg(name)))
            continue
        physical = result.allocation.mapping.get(name)
        if physical is not None:
            observed.append((name, state.read_reg(physical)))
            continue
        slot = result.allocation.spilled_slots.get(name)
        if slot is not None:
            observed.append((name, state.scratchpad.read(slot)))
        else:
            observed.append((name, None))  # optimised away / unmapped
    return observed


def _profile_projection(profile) -> list:
    """The engine-comparable subset of a :class:`SimProfile`.

    ``decodes`` is what *distinguishes* the engines and ``mi_text``
    coverage depends on which addresses the recorder was shown text
    for — neither belongs in a parity diff.
    """
    return [
        ("instructions", profile.instructions),
        ("busy_cycles", profile.busy_cycles),
        ("trap_cycles", profile.trap_cycles),
        ("traps", profile.traps),
        ("polls", profile.polls),
        ("exec_counts", tuple(sorted(profile.exec_counts.data.items()))),
        ("cycle_counts", tuple(sorted(profile.cycle_counts.data.items()))),
        ("field_util", tuple(sorted(profile.field_util.data.items()))),
    ]


def execute_case(
    case: GeneratedCase,
    result,
    machine=None,
    *,
    engine: str = "interpretive",
    paging: bool = False,
    trace_hot_threshold: int | None = None,
) -> Observation:
    """Run one compiled case to completion and observe everything."""
    machine = build_machine(case.machine) if machine is None else machine
    store = ControlStore(machine)
    store.load(result.loaded)
    memory = MainMemory(paging_enabled=paging)
    for address, value in case.memory.items():
        memory.load_words(address, [value])
    state = MachineState(machine, memory=memory)
    recorder = TraceRecorder()
    extra = {}
    if trace_hot_threshold is not None:
        extra["trace_hot_threshold"] = trace_hot_threshold
    simulator = Simulator(
        machine, store, state=state, recorder=recorder, engine=engine,
        trap_service=_paging_service if paging else None,
        **extra,
    )
    run = simulator.run(result.loaded.name, max_cycles=MAX_CYCLES)
    return Observation(
        words=tuple(word.word for word in result.loaded.words),
        entry=result.loaded.entry,
        mapping=tuple(sorted(result.allocation.mapping.items())),
        cycles=run.cycles,
        instructions=run.instructions,
        traps=run.traps,
        interrupts=run.interrupts_serviced,
        exit_value=run.exit_value,
        registers=tuple(_resolve_observed(case, result, state)),
        flags=tuple(sorted(state.flags.items())),
        memory=(
            tuple(memory.dump_words(*case.mem_region))
            if case.mem_region else None
        ),
        profile=tuple(_profile_projection(recorder.profile)),
    )


def observe(
    case: GeneratedCase,
    *,
    engine: str = "interpretive",
    restart_safe: bool = False,
    paging: bool = False,
    cache=None,
    trace_hot_threshold: int | None = None,
) -> Observation:
    """Fresh machine, compile, run — errors become observations."""
    try:
        machine = build_machine(case.machine)
        result = compile_case(
            case, machine, restart_safe=restart_safe, cache=cache,
        )
        return execute_case(
            case, result, machine, engine=engine, paging=paging,
            trace_hot_threshold=trace_hot_threshold,
        )
    except Exception as error:
        return Observation(error=f"{type(error).__name__}: {error}")


def observe_batch(
    case: GeneratedCase,
    *,
    lanes: int = DEFAULT_LANES,
    paging: bool = False,
    backend: str = "auto",
) -> list[Observation]:
    """One observation per lane of a lockstep batch of the case.

    Every lane starts from the same initial state, so all lanes must
    observe exactly what the scalar decoded run observes — including
    lanes the driver peeled (traps, per-lane errors), whose scalar
    replay is the comparison's whole point.  Errors are captured per
    lane in the same ``TypeName: message`` rendering as
    :func:`observe`, so crash parity diffs cleanly too.
    """
    try:
        machine = build_machine(case.machine)
        result = compile_case(case, machine)
        outcomes = run_cases(
            machine, result.loaded,
            [BatchCase(memory=dict(case.memory)) for _ in range(lanes)],
            batch=lanes, paging=paging,
            trap_service=_paging_service if paging else None,
            max_cycles=MAX_CYCLES, backend=backend,
        )
    except Exception as error:
        return [Observation(error=f"{type(error).__name__}: {error}")] * lanes
    observations = []
    for outcome in outcomes:
        if outcome.error is not None:
            observations.append(Observation(
                error=f"{type(outcome.error).__name__}: {outcome.error}"
            ))
            continue
        try:
            run = outcome.result
            observations.append(Observation(
                words=tuple(word.word for word in result.loaded.words),
                entry=result.loaded.entry,
                mapping=tuple(sorted(result.allocation.mapping.items())),
                cycles=run.cycles,
                instructions=run.instructions,
                traps=run.traps,
                interrupts=run.interrupts_serviced,
                exit_value=run.exit_value,
                registers=tuple(_resolve_observed(case, result, outcome)),
                flags=tuple(sorted(outcome.flags.items())),
                memory=(
                    tuple(outcome.memory.dump_words(*case.mem_region))
                    if case.mem_region else None
                ),
            ))
        except Exception as error:
            observations.append(
                Observation(error=f"{type(error).__name__}: {error}")
            )
    return observations


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
def _render(name: str, left, right) -> str:
    left_text, right_text = repr(left), repr(right)
    if len(left_text) > 120:
        left_text = left_text[:117] + "..."
    if len(right_text) > 120:
        right_text = right_text[:117] + "..."
    return f"{name}: {left_text} != {right_text}"


def diff_observations(
    left: Observation, right: Observation, fields: tuple[str, ...]
) -> list[str]:
    """Rendered mismatches over the named fields (empty = identical).

    When either side errored, only the ``error`` fields are compared —
    a divergence is "one side crashed and the other did not" (or
    different crashes), never a diff of empty observables.
    """
    if left.error is not None or right.error is not None:
        if left.error != right.error:
            return [_render("error", left.error, right.error)]
        return []
    mismatches = []
    for name in fields:
        a, b = getattr(left, name), getattr(right, name)
        if a != b:
            mismatches.append(_render(name, a, b))
    return mismatches


_FULL = (
    "words", "entry", "mapping", "cycles", "instructions", "traps",
    "interrupts", "exit_value", "registers", "flags", "memory", "profile",
)
#: Trap-free semantics only: the restart transform may legitimately
#: change schedules, words and therefore cycle counts.
_SEMANTIC = ("exit_value", "traps", "memory")
#: The batched driver replays peeled lanes on a fresh scalar simulator
#: with no recorder attached, so everything except the profile must
#: match the scalar decoded run observable for observable.
_BATCH_FIELDS = tuple(name for name in _FULL if name != "profile")


# ----------------------------------------------------------------------
# Axes
# ----------------------------------------------------------------------
def _axis_engine(case: GeneratedCase, workdir) -> list[str]:
    paging = case.uses_memory
    left = observe(case, engine="interpretive", paging=paging)
    right = observe(case, engine="decoded", paging=paging)
    return diff_observations(left, right, _FULL)


def _axis_traced(case: GeneratedCase, workdir) -> list[str]:
    paging = case.uses_memory
    left = observe(case, engine="decoded", paging=paging)
    # Threshold 1: the first back edge arms recording, so even the
    # 2-3-trip bounded loops the generators emit get stitched and
    # dispatched instead of never reaching the production default.
    right = observe(
        case, engine="traced", paging=paging, trace_hot_threshold=1,
    )
    return diff_observations(left, right, _FULL)


def _axis_cache(case: GeneratedCase, workdir) -> list[str]:
    fresh = observe(case)
    if workdir is None:
        cached = observe(case, cache=CompileCache())
        return diff_observations(fresh, cached, _FULL)
    disk = workdir / f"cache-{case.lang}-{case.machine}-{case.seed}"
    # Separate instances sharing one directory: the writer's memory
    # tier cannot serve the second probe, forcing the pickle round
    # trip the axis exists to check.
    writer = CompileCache(disk_dir=disk)
    observe(case, cache=writer)
    reader = CompileCache(disk_dir=disk)
    cached = observe(case, cache=reader)
    mismatches = diff_observations(fresh, cached, _FULL)
    if reader.stats.disk_hits != 1:
        mismatches.append(_render("disk_hits", 1, reader.stats.disk_hits))
    return mismatches


def _axis_restart(case: GeneratedCase, workdir) -> list[str]:
    left = observe(case, restart_safe=False)
    right = observe(case, restart_safe=True)
    fields = _SEMANTIC + (("registers",) if case.physical_observe else ())
    return diff_observations(left, right, fields)


def _axis_shards(case: GeneratedCase, workdir) -> list[str]:
    from repro.faults.campaign import run_campaign
    from repro.faults.report import campaign_json

    def campaign(jobs: int) -> str:
        return campaign_json([
            run_campaign(
                case.source, case.lang, build_machine(case.machine),
                n=4, seed=case.seed * 13 + 5, jobs=jobs,
                memory=dict(case.memory) or None,
            )
        ])

    try:
        serial, sharded = campaign(jobs=1), campaign(jobs=2)
    except Exception as error:
        return [f"campaign: {type(error).__name__}: {error}"]
    if serial != sharded:
        lines = [
            f"line {i}: {a!r} != {b!r}"
            for i, (a, b) in enumerate(
                zip(serial.splitlines(), sharded.splitlines())
            )
            if a != b
        ]
        return ["report: serial vs jobs=2 JSON differs"] + lines[:5]
    return []


def _axis_batched(
    case: GeneratedCase, workdir, lanes: int = DEFAULT_LANES
) -> list[str]:
    paging = case.uses_memory
    left = observe(case, engine="decoded", paging=paging)
    mismatches = []
    for lane, right in enumerate(
        observe_batch(case, lanes=lanes, paging=paging)
    ):
        for line in diff_observations(left, right, _BATCH_FIELDS):
            mismatches.append(f"lane {lane} {line}")
    return mismatches


#: axis name -> callable ``(case, workdir) -> list of mismatches``.
AXES = {
    "engine": _axis_engine,
    "traced": _axis_traced,
    "cache": _axis_cache,
    "restart": _axis_restart,
    "shards": _axis_shards,
    "batched": _axis_batched,
}


def run_axis(
    axis: str, case: GeneratedCase, *, workdir=None,
    batch: int = DEFAULT_LANES,
) -> Divergence | None:
    """Run one case under one axis; None when both sides agree.

    ``batch`` sizes the ``batched`` axis's lockstep side and is
    ignored by every other axis.
    """
    if axis == "batched":
        mismatches = _axis_batched(case, workdir, batch)
    else:
        mismatches = AXES[axis](case, workdir)
    if not mismatches:
        return None
    return Divergence(case=case, axis=axis, mismatches=mismatches)
