"""Seeded per-language source generators for differential testing.

One abstract *program plan* — initialized variables, single-operator
arithmetic, bounded countdown loops, two-armed conditionals, memory
traffic where the language has it, and a terminal xor-fold that keeps
every observed variable live to the end — is rendered into concrete
source text by one renderer per registered front end.  The shared plan
keeps the five generators semantically comparable (the same kind of
program space is explored everywhere) while each renderer speaks its
language's §2.2.x surface syntax.

Generators are *machine-driven*: operand registers come from the
target's allocatable pool and micro-operations are filtered through
``machine.has_op``, so the same generator works on HM1, CM1 and VM1
alike.  Generation is deterministic per ``rng`` state; the harness
derives one :class:`random.Random` per case from the campaign seed.

Every generated program terminates by construction: loops are
countdowns from small literals over strictly decremented counters,
and there is no other backwards control flow.

Registration: each generator is installed with
:func:`repro.registry.register_generator`, making "every language has
a generator" a property the self-tests can check mechanically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.machine.machine import MicroArchitecture
from repro.machine.registers import GPR
from repro.registry import register_generator

#: Abstract ALU operators -> the micro-operation that must exist.
_ALU_OPS = {"+": "add", "-": "sub", "&": "and", "|": "or", "xor": "xor"}
#: Relational operators shared by every front end's condition syntax.
_RELOPS = ("=", "#", "<", "<=", ">", ">=")
#: Inverted relop, for rendering if/else as a conditional skip (YALLL).
_INVERT = {"=": "#", "#": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}

#: Memory region diffed by the oracle, per data-base convention.
YALLL_BASE = 0x0100
SIMPL_BASE = 0x0140
EMPL_BASE = 0x6000   # the front end's data_base default
MPL_BASE = 0x6800    # the front end's data_base default
REGION_WORDS = 8


@dataclass(frozen=True)
class GeneratedCase:
    """One generated differential-test case, ready for the oracle.

    Attributes:
        lang: Registered language name.
        machine: Registered machine name the source was generated for.
        seed: The per-case seed (reproduces the case exactly).
        source: The program text.
        name: Program name (passed as the ``name=`` compile option on
            front ends that accept one).
        observe: Source-level names whose final values the oracle
            reads (resolved through the allocation mapping).
        physical_observe: True when ``observe`` names physical
            registers (SIMPL/MPL/S*), so observations stay comparable
            *across* different compilations of the same source.
        memory: Initial memory image (address -> word).
        mem_region: ``(base, length)`` of the data region the oracle
            dumps and diffs, or None when the case never touches
            memory.
        uses_memory: The program executes read/write micro-operations
            (enables the paging/trap execution mode).
        has_stores: The program writes main memory (trapped runs of
            storing programs are only compared engine-vs-engine, never
            against a trap-free golden).
    """

    lang: str
    machine: str
    seed: int
    source: str
    name: str = "difftest"
    observe: tuple[str, ...] = ()
    physical_observe: bool = False
    memory: dict = field(default_factory=dict)
    mem_region: tuple[int, int] | None = None
    uses_memory: bool = False
    has_stores: bool = False

    def with_source(self, source: str) -> "GeneratedCase":
        """The same case over different source text (reduction)."""
        return replace(self, source=source)


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Caps:
    """What one language's renderer can express."""

    shifts: bool = True
    memory: bool = False
    if_else: bool = True


def _build_plan(
    rng: random.Random,
    variables: list[str],
    counters: list[str],
    caps: _Caps,
    alu_pool: list[str],
    shift_pool: list[str],
    n_stmts: int,
) -> list:
    """A recursive statement plan over abstract variable names.

    Literals come from a small per-case pool and loops count down from
    2 or 3: SIMPL-class front ends have *no* wide-literal synthesis —
    every distinct non-{0, 1, -1} literal permanently occupies one of
    a handful of constant-ROM slots (C0..C7 on the reference
    machines), so an unbounded literal stream would exhaust the ROM
    mid-program.  Memory statements draw from two fixed slots per case
    for the same reason (each distinct address is a literal).
    """
    pool = sorted({rng.randint(2, 255) for _ in range(3)} | {0, 1})
    slot_pool = rng.sample(range(REGION_WORDS), 2)

    def _literal(rng: random.Random) -> int:
        return rng.choice(pool)

    def operand(allow_literal: bool = True):
        if allow_literal and rng.random() < 0.3:
            return _literal(rng)
        return rng.choice(variables)

    def statements(budget: int, depth: int) -> list:
        body: list = []
        while budget > 0:
            roll = rng.random()
            if roll < 0.55 or depth >= 2 and roll < 0.8:
                op = rng.choice(alu_pool)
                body.append(("alu", op, rng.choice(variables),
                             operand(False), operand()))
                budget -= 1
            elif roll < 0.65 and caps.shifts and shift_pool:
                body.append(("shift", rng.choice(shift_pool),
                             rng.choice(variables), operand(False), 1))
                budget -= 1
            elif roll < 0.75 and depth < 2 and counters:
                counter = counters[depth]
                inner = statements(min(budget, rng.randint(1, 3)), depth + 1)
                body.append(("loop", counter, rng.choice((2, 3)), inner))
                budget -= max(1, len(inner))
            elif roll < 0.85 and caps.memory:
                slot = rng.choice(slot_pool)
                if rng.random() < 0.5:
                    body.append(("store", slot, rng.choice(variables)))
                else:
                    body.append(("load", rng.choice(variables), slot))
                budget -= 1
            else:
                cond = (operand(False), rng.choice(_RELOPS), operand())
                then_body = statements(min(budget, rng.randint(1, 2)),
                                       depth + 1)
                else_body = (
                    statements(min(budget, rng.randint(1, 2)), depth + 1)
                    if caps.if_else and rng.random() < 0.5 else None
                )
                body.append(("if", cond, then_body, else_body))
                budget -= max(1, len(then_body) + len(else_body or []))
        return body

    plan: list = [("init", name, _literal(rng)) for name in variables]
    plan.extend(statements(n_stmts, 0))
    plan.append(("foldall",))
    return plan


def _plan_touches_memory(plan: list) -> tuple[bool, bool]:
    """(uses_memory, has_stores) over the whole plan."""
    uses = stores = False
    for node in plan:
        kind = node[0]
        if kind == "store":
            uses = stores = True
        elif kind == "load":
            uses = True
        elif kind == "loop":
            u, s = _plan_touches_memory(node[3])
            uses, stores = uses or u, stores or s
        elif kind == "if":
            for branch in (node[2], node[3] or []):
                u, s = _plan_touches_memory(branch)
                uses, stores = uses or u, stores or s
    return uses, stores


def _machine_pools(
    machine: MicroArchitecture,
) -> tuple[list[str], list[str], list[str]]:
    """(registers, alu ops, shift ops) the machine supports."""
    registers = [r.name for r in machine.registers.allocatable(GPR)]
    alu = [op for op, micro in _ALU_OPS.items() if machine.has_op(micro)]
    if not alu:
        raise ValueError(
            f"machine {machine.name!r} supports none of the difftest "
            f"ALU ops ({', '.join(_ALU_OPS.values())})"
        )
    shifts = [op for op in ("shl", "shr") if machine.has_op(op)]
    return registers, alu, shifts


def _size(rng: random.Random, size: int | None) -> int:
    return size if size is not None else rng.randint(6, 18)


def _has_mem(machine: MicroArchitecture) -> bool:
    return machine.has_op("read") and machine.has_op("write")


# ----------------------------------------------------------------------
# YALLL
# ----------------------------------------------------------------------
def generate_yalll(
    machine: MicroArchitecture, rng: random.Random, *, size: int | None = None
) -> GeneratedCase:
    """A YALLL program over symbolic variables, folding into ``exit``."""
    n_regs = len(machine.registers.allocatable(GPR))
    _, alu, shifts = _machine_pools(machine)
    memory_ok = _has_mem(machine)
    n_vars = min(3, max(2, n_regs - 5))
    variables = [f"v{i}" for i in range(n_vars)]
    counters = ["k0", "k1"]
    plan = _build_plan(
        rng, variables, counters,
        _Caps(shifts=bool(shifts), memory=memory_ok),
        alu, shifts, _size(rng, size),
    )
    uses_memory, has_stores = _plan_touches_memory(plan)

    lines: list[str] = []
    labels = iter(range(1000))

    def emit(statement_list: list) -> None:
        for node in statement_list:
            kind = node[0]
            if kind == "init":
                lines.append(f"    put {node[1]},{node[2]}")
            elif kind == "alu":
                _, op, dest, a, b = node
                lines.append(f"    {_ALU_OPS[op]} {dest},{a},{b}")
            elif kind == "shift":
                _, direction, dest, src, count = node
                lines.append(f"    {direction} {dest},{src},{count}")
            elif kind == "loop":
                _, counter, n, body = node
                label = f"loop{next(labels)}"
                lines.append(f"    put {counter},{n}")
                lines.append(f"{label}:")
                emit(body)
                lines.append(f"    sub {counter},{counter},1")
                lines.append(f"    jump {label} if {counter} # 0")
            elif kind == "if":
                _, (a, relop, b), then_body, else_body = node
                index = next(labels)
                skip, end = f"skip{index}", f"end{index}"
                lines.append(f"    jump {skip} if {a} {_INVERT[relop]} {b}")
                emit(then_body)
                if else_body is not None:
                    lines.append(f"    jump {end}")
                    lines.append(f"{skip}:")
                    emit(else_body)
                    lines.append(f"{end}:")
                else:
                    lines.append(f"{skip}:")
            elif kind == "store":
                _, slot, var = node
                lines.append(f"    put ad0,{YALLL_BASE + slot}")
                lines.append(f"    stor {var},ad0")
            elif kind == "load":
                _, var, slot = node
                lines.append(f"    put ad0,{YALLL_BASE + slot}")
                lines.append(f"    load {var},ad0")
            elif kind == "foldall":
                lines.append("    put fold,0")
                for var in variables:
                    lines.append(f"    xor fold,fold,{var}")
                lines.append("    exit fold")

    emit(plan)
    return GeneratedCase(
        lang="yalll", machine=machine.name, seed=0,
        source="\n".join(lines) + "\n",
        observe=tuple(variables) + ("fold",),
        physical_observe=False,
        memory={YALLL_BASE + i: (i * 17 + 3) & 0xFFFF
                for i in range(REGION_WORDS)} if uses_memory else {},
        mem_region=(YALLL_BASE, REGION_WORDS) if uses_memory else None,
        uses_memory=uses_memory, has_stores=has_stores,
    )


# ----------------------------------------------------------------------
# SIMPL / MPL (shared ALGOL-ish renderer)
# ----------------------------------------------------------------------
def _render_algol(
    plan: list,
    variables: list[str],
    acc: str,
    *,
    indent: str = "    ",
    store=None,
    load=None,
    shift_op: str = "^",
) -> list[str]:
    """Statement lines for the SIMPL/MPL surface syntax.

    ``store(slot, var)`` / ``load(var, slot)`` render the language's
    memory access (``write``/``read`` for SIMPL, arrays for MPL).
    """
    lines: list[str] = []

    def emit(statement_list: list, depth: int) -> None:
        pad = indent * (depth + 1)
        for node in statement_list:
            kind = node[0]
            if kind == "init":
                lines.append(f"{pad}{node[2]} -> {node[1]};")
            elif kind == "alu":
                _, op, dest, a, b = node
                lines.append(f"{pad}{a} {op} {b} -> {dest};")
            elif kind == "shift":
                _, direction, dest, src, count = node
                count = count if direction == "shl" else -count
                lines.append(f"{pad}{src} {shift_op} {count} -> {dest};")
            elif kind == "loop":
                _, counter, n, body = node
                lines.append(f"{pad}{n} -> {counter};")
                lines.append(f"{pad}while {counter} # 0 do")
                lines.append(f"{pad}begin")
                emit(body, depth + 1)
                lines.append(f"{pad}{indent}{counter} - 1 -> {counter};")
                lines.append(f"{pad}end;")
            elif kind == "if":
                _, (a, relop, b), then_body, else_body = node
                lines.append(f"{pad}if {a} {relop} {b} then")
                lines.append(f"{pad}begin")
                emit(then_body, depth + 1)
                lines.append(f"{pad}end")
                if else_body is not None:
                    lines.append(f"{pad}else")
                    lines.append(f"{pad}begin")
                    emit(else_body, depth + 1)
                    lines.append(f"{pad}end;")
                else:
                    lines.append(f"{pad};")
            elif kind == "store":
                lines.append(pad + store(node[1], node[2]))
            elif kind == "load":
                lines.append(pad + load(node[1], node[2]))
            elif kind == "foldall":
                lines.append(f"{pad}0 -> {acc};")
                for var in variables:
                    lines.append(f"{pad}{acc} xor {var} -> {acc};")

    emit(plan, 0)
    return lines


def _register_split(
    rng: random.Random, registers: list[str], *, reserve: int = 0
) -> tuple[list[str], list[str], str, list[str]]:
    """Partition a machine's register pool into generator roles."""
    pool = list(registers)
    rng.shuffle(pool)
    n_vars = min(3, len(pool) - 3 - reserve)
    if n_vars < 2:
        raise ValueError(
            f"register pool too small for difftest generation: {registers}"
        )
    variables = pool[:n_vars]
    counters = pool[n_vars:n_vars + 2]
    acc = pool[n_vars + 2]
    spare = pool[n_vars + 3:]
    return variables, counters, acc, spare


def generate_simpl(
    machine: MicroArchitecture, rng: random.Random, *, size: int | None = None
) -> GeneratedCase:
    """A SIMPL program over the machine's own register names."""
    registers, alu, shifts = _machine_pools(machine)
    variables, counters, acc, _ = _register_split(rng, registers)
    memory_ok = _has_mem(machine)
    plan = _build_plan(
        rng, variables, counters,
        _Caps(shifts=bool(shifts), memory=memory_ok),
        alu, shifts, _size(rng, size),
    )
    uses_memory, has_stores = _plan_touches_memory(plan)
    body = _render_algol(
        plan, variables, acc,
        store=lambda slot, var: f"write({SIMPL_BASE + slot}, {var});",
        load=lambda var, slot: f"read({SIMPL_BASE + slot}) -> {var};",
    )
    source = "program difftest;\nbegin\n" + "\n".join(body) + "\nend\n"
    return GeneratedCase(
        lang="simpl", machine=machine.name, seed=0, source=source,
        observe=tuple(variables) + (acc,), physical_observe=True,
        memory={SIMPL_BASE + i: (i * 23 + 7) & 0xFFFF
                for i in range(REGION_WORDS)} if uses_memory else {},
        mem_region=(SIMPL_BASE, REGION_WORDS) if uses_memory else None,
        uses_memory=uses_memory, has_stores=has_stores,
    )


def generate_mpl(
    machine: MicroArchitecture, rng: random.Random, *, size: int | None = None
) -> GeneratedCase:
    """An MPL program: SIMPL's shapes plus arrays (and their memory)."""
    registers, alu, shifts = _machine_pools(machine)
    variables, counters, acc, _ = _register_split(rng, registers)
    memory_ok = _has_mem(machine)
    plan = _build_plan(
        rng, variables, counters,
        _Caps(shifts=bool(shifts), memory=memory_ok),
        alu, shifts, _size(rng, size),
    )
    uses_memory, has_stores = _plan_touches_memory(plan)
    body = _render_algol(
        plan, variables, acc,
        store=lambda slot, var: f"{var} -> ARR[{slot}];",
        load=lambda var, slot: f"ARR[{slot}] -> {var};",
    )
    header = "program difftest;\n"
    if uses_memory:
        header += f"array ARR[{REGION_WORDS}];\n"
    source = header + "begin\n" + "\n".join(body) + "\nend\n"
    return GeneratedCase(
        lang="mpl", machine=machine.name, seed=0, source=source,
        observe=tuple(variables) + (acc,), physical_observe=True,
        memory={MPL_BASE + i: (i * 29 + 11) & 0xFFFF
                for i in range(REGION_WORDS)} if uses_memory else {},
        mem_region=(MPL_BASE, REGION_WORDS) if uses_memory else None,
        uses_memory=uses_memory, has_stores=has_stores,
    )


# ----------------------------------------------------------------------
# S*
# ----------------------------------------------------------------------
def generate_sstar(
    machine: MicroArchitecture, rng: random.Random, *, size: int | None = None
) -> GeneratedCase:
    """An S(M) program with every variable explicitly bound (§2.2.3)."""
    registers, alu, shifts = _machine_pools(machine)
    bind_vars, bind_counters, bind_acc, _ = _register_split(rng, registers)
    variables = [f"x{i}" for i in range(len(bind_vars))]
    counters = [f"c{i}" for i in range(len(bind_counters))]
    acc = "xacc"
    plan = _build_plan(
        rng, variables, counters,
        _Caps(shifts=bool(shifts), memory=False),
        alu, shifts, _size(rng, size),
    )
    width = machine.word_size - 1
    decls = [
        f"var {name} : seq [{width}..0] bit bind {reg};"
        for name, reg in zip(
            variables + counters + [acc],
            bind_vars + bind_counters + [bind_acc],
        )
    ]
    relops = {"#": "<>"}

    # S* statement lists take *optional* semicolon separators, but an
    # if-arm and a while-body are each exactly ONE statement — so
    # every statement is emitted semicolon-free on its own lines, and
    # anything compound (a loop's init + while, a multi-statement arm)
    # is wrapped in its own begin/end to stay a single statement.
    def render_one(node, depth: int) -> list[str]:
        pad = "  " * (depth + 1)
        kind = node[0]
        if kind == "init":
            return [f"{pad}{node[1]} := {node[2]}"]
        if kind == "alu":
            _, op, dest, a, b = node
            return [f"{pad}{dest} := {a} {op} {b}"]
        if kind == "shift":
            _, direction, dest, src, count = node
            return [f"{pad}{dest} := {src} {direction} {count}"]
        if kind == "loop":
            _, counter, n, body = node
            inner = render_list(body, depth + 2)
            inner.append(f"{'  ' * (depth + 3)}{counter} := {counter} - 1")
            return [
                f"{pad}begin",
                f"{pad}  {counter} := {n}",
                f"{pad}  while {counter} <> 0 do",
                f"{pad}  begin",
                *inner,
                f"{pad}  end",
                f"{pad}end",
            ]
        if kind == "if":
            _, (a, relop, b), then_body, else_body = node
            out = [f"{pad}if {a} {relops.get(relop, relop)} {b} then"]
            out.extend(render_arm(then_body, depth + 1, a))
            if else_body is not None:
                out.append(f"{pad}else")
                out.extend(render_arm(else_body, depth + 1, a))
            out.append(f"{pad}fi")
            return out
        if kind == "foldall":
            out = [f"{pad}{acc} := 0"]
            out.extend(f"{pad}{acc} := {acc} xor {var}" for var in variables)
            return out
        raise AssertionError(f"unrenderable plan node {kind!r}")

    def render_list(nodes: list, depth: int) -> list[str]:
        lines: list[str] = []
        for node in nodes:
            lines.extend(render_one(node, depth))
        return lines

    def render_arm(nodes: list, depth: int, scratch: str) -> list[str]:
        pad = "  " * (depth + 1)
        if not nodes:
            return [f"{pad}{scratch} := {scratch}"]  # explicit no-op arm
        if len(nodes) == 1 and nodes[0][0] != "foldall":
            return render_one(nodes[0], depth)
        return [f"{pad}begin", *render_list(nodes, depth + 1), f"{pad}end"]

    source = (
        "program difftest;\n" + "\n".join(decls) + "\nbegin\n"
        + "\n".join(render_list(plan, 0)) + "\nend\n"
    )
    observe = dict(zip(variables + [acc], bind_vars + [bind_acc]))
    return GeneratedCase(
        lang="sstar", machine=machine.name, seed=0, source=source,
        observe=tuple(observe.values()), physical_observe=True,
    )


register_generator("yalll", generate_yalll)
register_generator("simpl", generate_simpl)
register_generator("mpl", generate_mpl)
register_generator("sstar", generate_sstar)


# ----------------------------------------------------------------------
# EMPL
# ----------------------------------------------------------------------
def generate_empl(
    machine: MicroArchitecture, rng: random.Random, *, size: int | None = None
) -> GeneratedCase:
    """An EMPL program over declared FIXED scalars (PL/I surface)."""
    _, alu, shifts = _machine_pools(machine)
    n_regs = len(machine.registers.allocatable(GPR))
    n_vars = min(3, max(2, n_regs - 5))
    variables = [f"V{i}" for i in range(n_vars)]
    counters = ["C0", "C1"]
    acc = "FOLD"
    memory_ok = _has_mem(machine)
    plan = _build_plan(
        rng, variables, counters,
        _Caps(shifts=bool(shifts), memory=memory_ok),
        alu, shifts, _size(rng, size),
    )
    uses_memory, has_stores = _plan_touches_memory(plan)
    ops = {"+": "+", "-": "-", "&": "&", "|": "|", "xor": "XOR"}

    lines: list[str] = []
    for name in variables + counters + [acc]:
        lines.append(f"DECLARE {name} FIXED;")
    if uses_memory:
        lines.append(f"DECLARE ARR({REGION_WORDS}) FIXED;")
    for name in counters + [acc]:
        lines.append(f"{name} = 0;")

    def emit(statement_list: list, depth: int) -> None:
        pad = "    " * depth
        for node in statement_list:
            kind = node[0]
            if kind == "init":
                lines.append(f"{pad}{node[1]} = {node[2]};")
            elif kind == "alu":
                _, op, dest, a, b = node
                lines.append(f"{pad}{dest} = {a} {ops[op]} {b};")
            elif kind == "shift":
                _, direction, dest, src, count = node
                lines.append(
                    f"{pad}{dest} = {src} {direction.upper()} {count};"
                )
            elif kind == "loop":
                _, counter, n, body = node
                lines.append(f"{pad}{counter} = {n};")
                lines.append(f"{pad}WHILE {counter} # 0 DO;")
                emit(body, depth + 1)
                lines.append(f"{pad}    {counter} = {counter} - 1;")
                lines.append(f"{pad}END;")
            elif kind == "if":
                _, (a, relop, b), then_body, else_body = node
                lines.append(f"{pad}IF {a} {relop} {b} THEN DO;")
                emit(then_body, depth + 1)
                lines.append(f"{pad}END;")
                if else_body is not None:
                    lines.append(f"{pad}ELSE DO;")
                    emit(else_body, depth + 1)
                    lines.append(f"{pad}END;")
            elif kind == "store":
                _, slot, var = node
                lines.append(f"{pad}ARR({slot}) = {var};")
            elif kind == "load":
                _, var, slot = node
                lines.append(f"{pad}{var} = ARR({slot});")
            elif kind == "foldall":
                for var in variables:
                    lines.append(f"{pad}{acc} = {acc} XOR {var};")

    emit(plan, 0)
    return GeneratedCase(
        lang="empl", machine=machine.name, seed=0,
        source="\n".join(lines) + "\n",
        observe=tuple(f"g_{name}" for name in variables + [acc]),
        physical_observe=False,
        memory={EMPL_BASE + i: (i * 31 + 5) & 0xFFFF
                for i in range(REGION_WORDS)} if uses_memory else {},
        mem_region=(EMPL_BASE, REGION_WORDS) if uses_memory else None,
        uses_memory=uses_memory, has_stores=has_stores,
    )


register_generator("empl", generate_empl)


# ----------------------------------------------------------------------
def generate_case(
    lang: str,
    machine: MicroArchitecture,
    seed: int,
    *,
    size: int | None = None,
) -> GeneratedCase:
    """Generate one case for ``lang`` on ``machine`` from ``seed``."""
    from repro.registry import get_generator

    rng = random.Random(seed)
    case = get_generator(lang)(machine, rng, size=size)
    return replace(case, seed=seed)
