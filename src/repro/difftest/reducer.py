"""Greedy test-case reduction for diverging difftest programs.

A divergence found on a 60-line generated program is a poor bug
report.  :func:`reduce_source` shrinks the program text while a
caller-supplied predicate keeps confirming the divergence — the
classic ddmin move (Zeller & Hildebrandt, "Simplifying and Isolating
Failure-Inducing Input"), specialised to line granularity:

* try removing contiguous line *chunks*, halving chunk size on every
  round that makes no progress, down to single lines;
* a candidate "passes" only when the predicate says the smaller
  program still both compiles and diverges — predicates are expected
  to treat *any* exception as "does not reproduce", so programs made
  syntactically invalid by a deletion are simply rejected;
* stop when a full single-line sweep removes nothing (a local
  1-minimal fixpoint) or ``max_rounds`` is exhausted.

The reducer knows nothing about any front end's grammar.  Structure
shows up only through the predicate: deleting a ``begin`` without its
``end`` fails to compile, so that candidate is rejected and the pair
survives together.  This keeps one reducer correct for all five
registered languages at the cost of some extra rejected candidates.
"""

from __future__ import annotations

from typing import Callable


def reduce_source(
    source: str,
    still_diverges: Callable[[str], bool],
    *,
    max_rounds: int = 64,
) -> str:
    """Shrink ``source`` while ``still_diverges`` keeps returning True.

    ``still_diverges`` receives candidate program text and must return
    True only when the candidate still exhibits the original
    divergence; it must swallow compile/run errors and report False
    for them.  The input itself is assumed to diverge — callers verify
    that before reducing.

    Returns the smallest text found (at worst the input, unchanged).
    """
    lines = source.splitlines()
    chunk = max(1, len(lines) // 2)
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        removed_any = False
        index = 0
        while index < len(lines):
            candidate = lines[:index] + lines[index + chunk:]
            if candidate and still_diverges("\n".join(candidate) + "\n"):
                lines = candidate
                removed_any = True
                # Re-test the same index: the next chunk slid into it.
            else:
                index += chunk
        if not removed_any:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return "\n".join(lines) + "\n"
