"""repro — a microprogramming-language toolkit.

A working reproduction of H.J. Sint, *A survey of high level
microprogramming languages* (Mathematisch Centrum IW 138/80, 1980):
the four languages the survey treats in detail — SIMPL, EMPL, S* and
YALLL — implemented end to end over a shared substrate of machine
descriptions, microinstruction composition, register allocation, a
microassembler and a phase-accurate simulator, plus the verification
subsystem and the survey's comparison matrix as data.

Quickstart::

    from repro import compile_yalll, get_machine, ControlStore, Simulator

    machine = get_machine("HP300m")
    result = compile_yalll(SOURCE, machine, name="demo")
    store = ControlStore(machine)
    store.load(result.loaded)
    sim = Simulator(machine, store)
    outcome = sim.run("demo")
"""

from repro.asm import ControlStore, LoadedProgram, assemble
from repro.compose import (
    ALL_COMPOSERS,
    BranchBoundComposer,
    LevelComposer,
    LinearComposer,
    ListScheduler,
    SequentialComposer,
    compose_program,
)
from repro.errors import ReproError
from repro.lang import (
    compile_empl,
    compile_mpl,
    compile_simpl,
    compile_sstar,
    compile_yalll,
    verify_sstar,
)
from repro.machine import MicroArchitecture
from repro.machine.machines import get_machine, machine_names
from repro.pipeline import CompileResult, Pipeline, Stage
from repro.registry import (
    LanguageSpec,
    MachineSpec,
    get_language,
    language_names,
)
from repro.obs import (
    NULL_TRACER,
    SimProfile,
    TraceRecorder,
    Tracer,
    render_hotspots,
    write_trace,
)
from repro.regalloc import (
    BindingAllocator,
    GraphColorAllocator,
    LinearScanAllocator,
)
from repro.sim import MachineState, RunResult, Simulator

__version__ = "1.0.0"

__all__ = [
    "ALL_COMPOSERS",
    "BindingAllocator",
    "BranchBoundComposer",
    "CompileResult",
    "ControlStore",
    "GraphColorAllocator",
    "LanguageSpec",
    "LevelComposer",
    "LinearComposer",
    "LinearScanAllocator",
    "ListScheduler",
    "LoadedProgram",
    "MachineSpec",
    "MachineState",
    "MicroArchitecture",
    "NULL_TRACER",
    "Pipeline",
    "ReproError",
    "RunResult",
    "SequentialComposer",
    "SimProfile",
    "Simulator",
    "Stage",
    "TraceRecorder",
    "Tracer",
    "__version__",
    "assemble",
    "compile_empl",
    "compile_mpl",
    "compile_simpl",
    "compile_sstar",
    "compile_yalll",
    "compose_program",
    "get_language",
    "get_machine",
    "language_names",
    "machine_names",
    "render_hotspots",
    "verify_sstar",
    "write_trace",
]
