"""Exception hierarchy for the repro toolkit.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch toolkit failures with a single ``except`` clause
while still being able to distinguish the phase that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro toolkit."""


class MachineError(ReproError):
    """An inconsistency in a machine description (S1/S2)."""


class EncodingError(MachineError):
    """A micro-operation could not be encoded into the control word."""


class MIRError(ReproError):
    """Malformed micro-IR: bad operands, unknown ops, broken CFG edges."""


class CompositionError(ReproError):
    """Microinstruction composition failed (unresolvable conflicts)."""


class ConflictError(CompositionError):
    """Two micro-operations placed in one microinstruction conflict."""


class AllocationError(ReproError):
    """Register allocation failed (e.g. unsatisfiable class constraints)."""


class AssemblerError(ReproError):
    """Control-word assembly or loading failed."""


class SimulationError(ReproError):
    """The simulator reached an invalid state."""


class SimulationLimitError(SimulationError):
    """A simulation watchdog budget was exhausted.

    Raised instead of looping forever when a run exceeds its cycle
    budget, services more traps than ``max_traps`` allows (a
    non-converging fault loop), or overruns a wall-clock deadline.

    Attributes:
        kind: Which budget tripped: ``"cycles"``, ``"traps"`` or
            ``"deadline"``.
        limit: The configured budget value.
    """

    def __init__(self, message: str, *, kind: str, limit: float):
        super().__init__(message)
        self.kind = kind
        self.limit = limit


class FaultPlanError(ReproError):
    """A fault-injection spec or plan could not be parsed or applied."""


class CampaignWorkerError(ReproError):
    """A campaign shard's worker process died and retries ran out.

    Raised by the ``--jobs`` fan-out instead of hanging on the pool
    (the historical ``multiprocessing.Pool`` failure mode) when a
    shard's process is killed — segfault, OOM-kill, a ``kill:``
    chaos injector — and re-running the shard keeps dying.

    Attributes:
        shard_index: Which shard could not be completed.
        requeues: How many times the shard was re-run before
            giving up.
        exitcode: The dead process's exit code (negative = signal).
    """

    def __init__(self, message: str, *, shard_index: int,
                 requeues: int, exitcode: int | None = None):
        super().__init__(message)
        self.shard_index = shard_index
        self.requeues = requeues
        self.exitcode = exitcode


class MicroTrap(SimulationError):
    """A microtrap (e.g. pagefault) occurred during simulation.

    Microtraps are *control flow*, not failures: the simulator catches
    them, services the trap, and restarts the current microprogram.
    They derive from :class:`SimulationError` so that an unhandled trap
    surfaces as a simulation failure.
    """

    def __init__(self, kind: str, detail: str = ""):
        super().__init__(f"microtrap {kind}: {detail}" if detail else f"microtrap {kind}")
        self.kind = kind
        self.detail = detail


class LanguageError(ReproError):
    """Base class for front-end errors, carrying a source location."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LexError(LanguageError):
    """The lexer met a character sequence it cannot tokenize."""


class ParseError(LanguageError):
    """The parser met an unexpected token."""


class SemanticError(LanguageError):
    """A semantic rule of the source language was violated."""


class VerificationError(ReproError):
    """A verification condition failed or could not be checked."""
