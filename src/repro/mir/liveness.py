"""Liveness analysis over micro-programs.

Register allocation (survey §2.1.3) needs to know, at every program
point, which variables still carry useful values — "the compiler needs
some insight in the use … of variables".  This is a standard backward
dataflow over the interprocedural CFG (procedure calls edge into the
callee, returns edge back to every continuation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.machine import MicroArchitecture
from repro.mir.block import BasicBlock, Call, Ret
from repro.mir.deps import op_reads, op_writes, terminator_reads
from repro.mir.program import MicroProgram


def _register_only(resources: set[str]) -> set[str]:
    """Filter resource names down to register names (incl. virtuals)."""
    return {
        r for r in resources
        if not r.startswith("flag:") and r not in ("mem", "interrupt")
        and not r.startswith("scr:")
    }


def program_successors(program: MicroProgram) -> dict[str, set[str]]:
    """Interprocedural successor map.

    ``Call`` blocks flow into the callee's entry; each callee ``Ret``
    block flows back to every continuation of a call to that procedure.
    """
    successors: dict[str, set[str]] = {label: set() for label in program.blocks}
    return_points: dict[str, set[str]] = {name: set() for name in program.procedures}
    for label, block in program.blocks.items():
        terminator = block.terminator
        if isinstance(terminator, Call):
            successors[label].add(program.procedures[terminator.proc].entry)
            return_points[terminator.proc].add(terminator.next)
        else:
            successors[label].update(terminator.successors())
    if return_points:
        owners = _block_owners(program)
        for label, block in program.blocks.items():
            if isinstance(block.terminator, Ret):
                for proc in owners.get(label, ()):  # pragma: no branch
                    successors[label].update(return_points.get(proc, set()))
    return successors


def _block_owners(program: MicroProgram) -> dict[str, set[str]]:
    """Which procedures (by reachability from their entry) own a block."""
    owners: dict[str, set[str]] = {}
    for procedure in program.procedures.values():
        stack = [procedure.entry]
        seen: set[str] = set()
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            owners.setdefault(label, set()).add(procedure.name)
            block = program.blocks[label]
            if not isinstance(block.terminator, (Call, Ret)):
                stack.extend(block.successors())
            elif isinstance(block.terminator, Call):
                stack.append(block.terminator.next)
        del seen
    return owners


@dataclass
class Liveness:
    """Per-block live-in/live-out register sets."""

    live_in: dict[str, set[str]] = field(default_factory=dict)
    live_out: dict[str, set[str]] = field(default_factory=dict)

    def live_after(
        self,
        block: BasicBlock,
        index: int,
        machine: MicroArchitecture,
    ) -> set[str]:
        """Registers live immediately *after* op ``index`` in a block."""
        live = set(self.live_out[block.label])
        live |= _register_only(terminator_reads(block, machine))
        for position in range(len(block.ops) - 1, index, -1):
            op = block.ops[position]
            live -= _register_only(op_writes(op, machine))
            live |= _register_only(op_reads(op, machine))
        return live


def analyze_liveness(
    program: MicroProgram, machine: MicroArchitecture
) -> Liveness:
    """Backward may-liveness over the interprocedural CFG."""
    use: dict[str, set[str]] = {}
    define: dict[str, set[str]] = {}
    for label, block in program.blocks.items():
        block_use: set[str] = set()
        block_def: set[str] = set()
        for op in block.ops:
            block_use |= _register_only(op_reads(op, machine)) - block_def
            block_def |= _register_only(op_writes(op, machine))
        block_use |= _register_only(terminator_reads(block, machine)) - block_def
        use[label] = block_use
        define[label] = block_def

    from repro.mir.block import Exit as _Exit

    successors = program_successors(program)
    exit_extra = {
        label: set(program.live_at_exit)
        if isinstance(block.terminator, _Exit)
        else set()
        for label, block in program.blocks.items()
    }
    result = Liveness(
        live_in={label: set() for label in program.blocks},
        live_out={label: set() for label in program.blocks},
    )
    changed = True
    while changed:
        changed = False
        for label in reversed(list(program.blocks)):
            out: set[str] = set(exit_extra[label])
            for successor in successors[label]:
                out |= result.live_in[successor]
            new_in = use[label] | (out - define[label])
            if out != result.live_out[label] or new_in != result.live_in[label]:
                result.live_out[label] = out
                result.live_in[label] = new_in
                changed = True
    return result
