"""Basic blocks and terminators.

A basic block is a branch-free sequence of micro-operations — the unit
over which all the survey's composition algorithms operate ("a minimal
… sequence of microinstructions from a sequence of microoperations
(without branches)", §2.1.4) — ended by exactly one terminator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MIRError
from repro.mir.operands import Reg
from repro.mir.ops import MicroOp

#: Conditions a conditional branch may test (flag or negated flag).
FLAG_CONDITIONS = ("Z", "NZ", "N", "NN", "C", "NC", "UF", "NUF")


@dataclass(frozen=True)
class Fallthrough:
    """Continue with the named block."""

    target: str

    def successors(self) -> tuple[str, ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"fall {self.target}"


@dataclass(frozen=True)
class Jump:
    """Unconditional microbranch."""

    target: str

    def successors(self) -> tuple[str, ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass(frozen=True)
class Branch:
    """Conditional branch on a hardware flag condition."""

    cond: str
    target: str
    otherwise: str

    def __post_init__(self) -> None:
        if self.cond not in FLAG_CONDITIONS:
            raise MIRError(f"unknown branch condition {self.cond!r}")

    def successors(self) -> tuple[str, ...]:
        return (self.target, self.otherwise)

    def tested_flag(self) -> str:
        """The underlying flag (condition with negation stripped)."""
        return self.cond[1:] if self.cond.startswith("N") and self.cond != "N" else self.cond

    def __str__(self) -> str:
        return f"br {self.cond} -> {self.target} else {self.otherwise}"


@dataclass(frozen=True)
class MaskCase:
    """One arm of a multiway branch: a ternary mask and a target.

    The mask is a string over ``{'0', '1', 'x'}`` (YALLL's 'false',
    'true' and 'dont-care' bits, §2.2.4), most significant bit first.
    """

    mask: str
    target: str

    def __post_init__(self) -> None:
        if not self.mask or any(c not in "01x" for c in self.mask):
            raise MIRError(f"bad multiway mask {self.mask!r}")

    def matches(self, value: int) -> bool:
        """Whether a register value matches this mask."""
        for position, bit in enumerate(reversed(self.mask)):
            if bit == "x":
                continue
            if ((value >> position) & 1) != int(bit):
                return False
        return True


@dataclass(frozen=True)
class Multiway:
    """Mask-table multiway branch (hardware-supported on some machines)."""

    reg: Reg
    cases: tuple[MaskCase, ...]
    default: str

    def successors(self) -> tuple[str, ...]:
        return tuple(case.target for case in self.cases) + (self.default,)

    def __str__(self) -> str:
        arms = ", ".join(f"{c.mask}->{c.target}" for c in self.cases)
        return f"mjump {self.reg} ({arms}, default->{self.default})"


@dataclass(frozen=True)
class Call:
    """Microsubroutine call; control continues at ``next`` after return."""

    proc: str
    next: str

    def successors(self) -> tuple[str, ...]:
        # Interprocedural successors are resolved by the CFG builder;
        # intraprocedurally control continues at ``next``.
        return (self.next,)

    def __str__(self) -> str:
        return f"call {self.proc} then {self.next}"


@dataclass(frozen=True)
class Ret:
    """Return from microsubroutine."""

    def successors(self) -> tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return "ret"


@dataclass(frozen=True)
class Exit:
    """Terminate the microprogram, optionally yielding a value register."""

    value: Reg | None = None

    def successors(self) -> tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return f"exit {self.value}" if self.value else "exit"


#: Union of all terminator kinds.
Terminator = Fallthrough | Jump | Branch | Multiway | Call | Ret | Exit


@dataclass
class BasicBlock:
    """A labeled, branch-free run of micro-operations plus a terminator."""

    label: str
    ops: list[MicroOp] = field(default_factory=list)
    terminator: Terminator | None = None

    def append(self, op: MicroOp) -> None:
        if self.terminator is not None:
            raise MIRError(f"block {self.label!r} already terminated")
        self.ops.append(op)

    def terminate(self, terminator: Terminator) -> None:
        if self.terminator is not None:
            raise MIRError(f"block {self.label!r} already terminated")
        self.terminator = terminator

    @property
    def terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> tuple[str, ...]:
        if self.terminator is None:
            raise MIRError(f"block {self.label!r} has no terminator")
        return self.terminator.successors()

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"    {op}" for op in self.ops)
        if self.terminator is not None:
            lines.append(f"    {self.terminator}")
        return "\n".join(lines)
