"""Micro-programs: CFGs of basic blocks, procedures, constant pool.

The :class:`ProgramBuilder` is the interface all code generators use:
it manages label generation, block sequencing, the machine's loadable
constant ROM (programs carry a ``constants`` pool the loader pokes into
``C0``… before execution) and virtual-register creation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MIRError
from repro.machine.machine import MicroArchitecture
from repro.machine.registers import CONST
from repro.mir.block import (
    BasicBlock,
    Call,
    Exit,
    Fallthrough,
    Ret,
    Terminator,
)
from repro.mir.operands import Imm, Operand, Reg, preg, vreg
from repro.mir.ops import MicroOp


def _terminator_regs(terminator: Terminator | None) -> tuple[Reg, ...]:
    """Register operands referenced by a terminator, if any."""
    from repro.mir.block import Exit as _Exit, Multiway as _Multiway

    if isinstance(terminator, _Exit) and terminator.value is not None:
        return (terminator.value,)
    if isinstance(terminator, _Multiway):
        return (terminator.reg,)
    return ()


@dataclass
class Procedure:
    """A named entry point: its entry block plus all reachable blocks."""

    name: str
    entry: str


@dataclass
class MicroProgram:
    """A complete microprogram: blocks, procedures and constants.

    Attributes:
        name: Program name (used by the loader and in listings).
        blocks: Basic blocks by label, in insertion order.
        entry: Label of the program's entry block.
        procedures: Microsubroutines by name.
        constants: Constant-ROM assignment (register name -> value),
            poked by the loader before execution.
    """

    name: str
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    entry: str = ""
    procedures: dict[str, Procedure] = field(default_factory=dict)
    constants: dict[str, int] = field(default_factory=dict)
    #: Resource names (``%v`` for virtuals) considered live when the
    #: program exits — EMPL-style global variables are observable state
    #: and must survive to the end (liveness honours this set).
    live_at_exit: set[str] = field(default_factory=set)

    def block(self, label: str) -> BasicBlock:
        try:
            return self.blocks[label]
        except KeyError:
            raise MIRError(f"{self.name}: unknown block {label!r}") from None

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self.blocks:
            raise MIRError(f"{self.name}: duplicate block {block.label!r}")
        self.blocks[block.label] = block
        return block

    def n_ops(self) -> int:
        """Total micro-operation count over all blocks."""
        return sum(len(block.ops) for block in self.blocks.values())

    def validate(self) -> None:
        """Check CFG integrity: all blocks terminated, edges resolve."""
        if self.entry not in self.blocks:
            raise MIRError(f"{self.name}: entry block {self.entry!r} missing")
        for block in self.blocks.values():
            if not block.terminated:
                raise MIRError(f"{self.name}: block {block.label!r} not terminated")
            for successor in block.successors():
                if successor not in self.blocks:
                    raise MIRError(
                        f"{self.name}: block {block.label!r} targets unknown "
                        f"block {successor!r}"
                    )
            if isinstance(block.terminator, Call):
                if block.terminator.proc not in self.procedures:
                    raise MIRError(
                        f"{self.name}: call to unknown procedure "
                        f"{block.terminator.proc!r}"
                    )
        for procedure in self.procedures.values():
            if procedure.entry not in self.blocks:
                raise MIRError(
                    f"{self.name}: procedure {procedure.name!r} entry "
                    f"{procedure.entry!r} missing"
                )

    def virtual_regs(self) -> set[Reg]:
        """All virtual registers appearing anywhere in the program."""
        found: set[Reg] = set()
        for block in self.blocks.values():
            for op in block.ops:
                found.update(r for r in op.regs() if r.virtual)
            for reg in _terminator_regs(block.terminator):
                if reg.virtual:
                    found.add(reg)
        return found

    def rename_regs(self, mapping: dict[Reg, Reg]) -> None:
        """Substitute registers across the whole program (in place)."""
        from dataclasses import replace as _replace

        from repro.mir.block import Exit as _Exit, Multiway as _Multiway

        for block in self.blocks.values():
            block.ops = [op.rename(mapping) for op in block.ops]
            terminator = block.terminator
            if isinstance(terminator, _Exit) and terminator.value in mapping:
                block.terminator = _replace(
                    terminator, value=mapping[terminator.value]
                )
            elif isinstance(terminator, _Multiway) and terminator.reg in mapping:
                block.terminator = _replace(terminator, reg=mapping[terminator.reg])

    def __str__(self) -> str:
        parts = [f"program {self.name} (entry {self.entry})"]
        if self.constants:
            pool = ", ".join(f"{k}={v:#x}" for k, v in self.constants.items())
            parts.append(f"  constants: {pool}")
        parts.extend(str(block) for block in self.blocks.values())
        return "\n".join(parts)


class ProgramBuilder:
    """Incremental construction of a :class:`MicroProgram`.

    The builder tracks a *current block*; ``emit`` appends to it and
    the ``branch``/``jump``/… helpers terminate it.  Starting a new
    block while the current one is unterminated inserts a fallthrough.
    """

    def __init__(self, name: str, machine: MicroArchitecture | None = None):
        self.program = MicroProgram(name)
        self.machine = machine
        self._current: BasicBlock | None = None
        self._label_counter = 0
        self._vreg_counter = 0
        self._const_slots: dict[int, str] = {}

    # -- labels and registers -------------------------------------------
    def fresh_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def fresh_vreg(self, hint: str = "t") -> Reg:
        self._vreg_counter += 1
        return vreg(f"{hint}{self._vreg_counter}")

    # -- blocks -----------------------------------------------------------
    def start_block(self, label: str | None = None) -> BasicBlock:
        """Open a new current block, falling through from the old one."""
        label = label or self.fresh_label()
        block = BasicBlock(label)
        if self._current is not None and not self._current.terminated:
            self._current.terminate(Fallthrough(label))
        self.program.add_block(block)
        if not self.program.entry:
            self.program.entry = label
        self._current = block
        return block

    @property
    def current(self) -> BasicBlock:
        if self._current is None:
            self.start_block()
        assert self._current is not None
        return self._current

    @property
    def has_open_block(self) -> bool:
        """Whether an unterminated block is under construction.

        Unlike :attr:`current`, this never opens a fresh block — use it
        to decide whether control can fall off the end of what has been
        generated so far.
        """
        return self._current is not None and not self._current.terminated

    def emit(self, op: MicroOp) -> MicroOp:
        self.current.append(op)
        return op

    def terminate(self, terminator: Terminator) -> None:
        self.current.terminate(terminator)

    # -- constants ----------------------------------------------------------
    def constant(self, value: int) -> Operand:
        """Materialize a constant as an operand.

        Small non-negative constants that machines can always inject as
        literals stay immediates; other values get a constant-ROM slot
        (re-used per distinct value).  Falls back to an immediate when
        the ROM is exhausted — back ends must then expand oversized
        literals themselves.
        """
        if self.machine is None:
            return Imm(value)
        value &= self.machine.mask()
        if value in self._const_slots:
            return preg(self._const_slots[value])
        for special, register in (
            (0, "ZERO"), (0, "R0"), (1, "ONE"),
            (self.machine.mask(), "MINUS1"),
        ):
            if value == special and register in self.machine.registers:
                return preg(register)
        slots = [
            r.name
            for r in self.machine.registers.in_class(CONST)
            if r.name.startswith("C")
        ]
        used = set(self._const_slots.values())
        free = [s for s in slots if s not in used]
        if not free:
            return Imm(value)
        slot = free[0]
        self._const_slots[value] = slot
        self.program.constants[slot] = value
        return preg(slot)

    # -- procedures -----------------------------------------------------------
    def declare_procedure(self, name: str, entry: str) -> None:
        if name in self.program.procedures:
            raise MIRError(f"duplicate procedure {name!r}")
        self.program.procedures[name] = Procedure(name, entry)

    def call(self, proc: str, next_label: str | None = None) -> str:
        """Terminate the current block with a call; returns the label
        of the continuation block, which becomes current."""
        next_label = next_label or self.fresh_label("ret")
        self.current.terminate(Call(proc, next_label))
        self._current = None
        self.start_block(next_label)
        return next_label

    def ret(self) -> None:
        self.terminate(Ret())
        self._current = None

    def exit(self, value: Reg | None = None) -> None:
        self.terminate(Exit(value))
        self._current = None

    # -- finish ------------------------------------------------------------------
    def finish(self) -> MicroProgram:
        """Validate and return the built program."""
        if self._current is not None and not self._current.terminated:
            self._current.terminate(Exit())
        self.program.validate()
        return self.program
