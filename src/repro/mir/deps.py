"""Data-dependence analysis over basic blocks (survey §2.1.4).

"Two forms of dependence must be taken into account: data dependence …
and resource dependence."  This module computes the *data* side — flow,
anti and output dependences over registers, condition flags, main
memory and scratchpad slots — as a DAG that all composition algorithms
consume.  Resource (control-word) conflicts live in
``repro.compose.conflicts``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MIRError
from repro.machine.machine import MicroArchitecture
from repro.mir.block import BasicBlock, Branch, Exit, Multiway
from repro.mir.operands import Imm, Reg
from repro.mir.ops import MicroOp

FLOW = "flow"
ANTI = "anti"
OUTPUT = "output"


@dataclass(frozen=True)
class Dependence:
    """A dependence edge: op ``src`` must precede op ``dst``."""

    src: int
    dst: int
    kind: str
    resource: str


def _scr_slot(op: MicroOp) -> str:
    """Resource name for a scratchpad access (slots disambiguate)."""
    imms = op.src_imms()
    return f"scr:{imms[0].value}" if imms else "scr:*"


def op_reads(op: MicroOp, machine: MicroArchitecture) -> set[str]:
    """Resources the op reads (registers, flags, memory, scratch)."""
    spec = machine.ops.default(op.op)
    reads: set[str] = {str(r) for r in op.src_regs()}
    if spec.reads_dest and op.dest is not None:
        reads.add(str(op.dest))
    reads.update(f"flag:{flag}" for flag in spec.reads_flags)
    if op.op == "read":
        reads.add("mem")
    if op.op == "write":
        reads.add("mem")  # ordered against other writes via the write set
    if op.op == "ldscr":
        reads.add(_scr_slot(op))
    if op.op == "poll":
        reads.add("interrupt")
    bank_pointer = machine.registers.bank_pointer
    if bank_pointer is not None:
        for reg in op.regs():
            if not reg.virtual and machine.registers.is_window(reg.name):
                reads.add(bank_pointer)
                break
    return reads


def op_writes(op: MicroOp, machine: MicroArchitecture) -> set[str]:
    """Resources the op writes."""
    spec = machine.ops.default(op.op)
    writes: set[str] = set()
    if op.dest is not None:
        writes.add(str(op.dest))
    writes.update(f"flag:{flag}" for flag in spec.writes_flags)
    if op.op == "write":
        writes.add("mem")
    if op.op == "stscr":
        writes.add(_scr_slot(op))
    if op.op == "poll":
        writes.add("interrupt")
    if op.op == "setblk" and machine.registers.bank_pointer is not None:
        writes.add(machine.registers.bank_pointer)
    return writes


def terminator_reads(block: BasicBlock, machine: MicroArchitecture) -> set[str]:
    """Resources a block's terminator depends on."""
    terminator = block.terminator
    if isinstance(terminator, Branch):
        return {f"flag:{terminator.tested_flag()}"}
    if isinstance(terminator, Multiway):
        return {str(terminator.reg)}
    if isinstance(terminator, Exit) and terminator.value is not None:
        return {str(terminator.value)}
    return set()


def _prune_dead_flag_writes(
    block: BasicBlock,
    machine: MicroArchitecture,
    reads: list[set[str]],
    writes: list[set[str]],
) -> None:
    """Drop flag writes nobody observes.

    Almost every ALU-class operation sets condition flags as a side
    effect; treating every such write as a dependence would serialize
    operations that are in fact parallel (no two flag-setting ops could
    ever share a microinstruction).  A flag write matters only if some
    later op or the block terminator reads the flag before the next
    write to it — otherwise it is dead and removed from the write set.
    """
    terminator_needs = terminator_reads(block, machine)
    for i in range(len(block.ops)):
        for resource in [w for w in writes[i] if w.startswith("flag:")]:
            live = False
            for j in range(i + 1, len(block.ops)):
                if resource in reads[j]:
                    live = True
                    break
                if resource in writes[j]:
                    break
            else:
                if resource in terminator_needs:
                    live = True
            if not live:
                writes[i].discard(resource)


@dataclass
class DependenceGraph:
    """Dependence DAG over a block's ops (+ a virtual terminator node).

    Node indices ``0..n-1`` are the block's ops in program order; node
    ``n`` (``terminator_node``) stands for the terminator and collects
    flow edges from producers of whatever the terminator tests.
    """

    n_ops: int
    edges: list[Dependence] = field(default_factory=list)
    preds: dict[int, set[int]] = field(default_factory=dict)
    succs: dict[int, set[int]] = field(default_factory=dict)
    weights: list[int] = field(default_factory=list)

    @property
    def terminator_node(self) -> int:
        return self.n_ops

    def add_edge(self, dependence: Dependence) -> None:
        self.edges.append(dependence)
        self.succs.setdefault(dependence.src, set()).add(dependence.dst)
        self.preds.setdefault(dependence.dst, set()).add(dependence.src)

    def predecessors(self, node: int) -> set[int]:
        return self.preds.get(node, set())

    def successors(self, node: int) -> set[int]:
        return self.succs.get(node, set())

    def has_path(self, src: int, dst: int) -> bool:
        """Whether a dependence path exists from src to dst."""
        if src == dst:
            return True
        seen = {src}
        stack = [src]
        while stack:
            node = stack.pop()
            for successor in self.successors(node):
                if successor == dst:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return False

    def independent(self, a: int, b: int) -> bool:
        """Whether two ops have no dependence path either way."""
        return not self.has_path(a, b) and not self.has_path(b, a)

    # -- schedules ---------------------------------------------------------
    def heights(self) -> list[int]:
        """Critical-path height of each op node (its own weight included).

        The height drives list scheduling: ops on long dependence
        chains are urgent.
        """
        heights = [0] * (self.n_ops + 1)
        for node in range(self.n_ops - 1, -1, -1):
            below = [
                heights[successor]
                for successor in self.successors(node)
                if successor < self.n_ops
            ]
            heights[node] = self.weights[node] + (max(below) if below else 0)
        return heights[: self.n_ops]

    def asap_levels(self) -> list[int]:
        """Earliest dependence level of each op (0-based).

        This is the partition the Dasgupta–Tartar "maximal parallelism"
        analysis [3] produces for straight-line code: ops sharing a
        level could execute simultaneously on unlimited hardware.
        """
        levels = [0] * self.n_ops
        for node in range(self.n_ops):
            above = [
                levels[predecessor] + 1
                for predecessor in self.predecessors(node)
                if predecessor < self.n_ops
            ]
            levels[node] = max(above) if above else 0
        return levels

    def alap_levels(self, length: int | None = None) -> list[int]:
        """Latest level each op may occupy in a schedule of ``length``."""
        asap = self.asap_levels()
        if length is None:
            length = (max(asap) + 1) if asap else 0
        levels = [length - 1] * self.n_ops
        for node in range(self.n_ops - 1, -1, -1):
            below = [
                levels[successor] - 1
                for successor in self.successors(node)
                if successor < self.n_ops
            ]
            if below:
                levels[node] = min(below)
        return levels

    def critical_path_length(self) -> int:
        """Length (in levels) of the longest dependence chain."""
        asap = self.asap_levels()
        return (max(asap) + 1) if asap else 0


def build_dependence_graph(
    block: BasicBlock, machine: MicroArchitecture
) -> DependenceGraph:
    """Compute the dependence DAG of a block against a machine.

    The classic pairwise rules (§2.1.4): for ops ``i < j`` there is a
    flow edge when i writes what j reads, an anti edge when i reads
    what j writes, and an output edge when both write the same
    resource.  The terminator node receives flow edges from the last
    producers of everything it tests.
    """
    ops = block.ops
    graph = DependenceGraph(n_ops=len(ops))
    graph.weights = [max(1, machine.latency_of(machine.ops.default(op.op))) for op in ops]
    reads = [op_reads(op, machine) for op in ops]
    writes_all = [op_writes(op, machine) for op in ops]
    writes_live = [set(w) for w in writes_all]
    _prune_dead_flag_writes(block, machine, reads, writes_live)
    # Edge rules (flags need care because *dead* flag writes still
    # physically execute):
    #   flow:   live write  -> read       (dead writes have no readers)
    #   anti:   read        -> any write  (a dead write moved before a
    #                                      reader would still corrupt it)
    #   output: any write   -> live write (orders every earlier writer
    #                                      before the value a reader sees;
    #                                      two dead writes may commute)
    for j in range(len(ops)):
        for i in range(j):
            for resource in writes_live[i] & reads[j]:
                graph.add_edge(Dependence(i, j, FLOW, resource))
            for resource in reads[i] & writes_all[j]:
                graph.add_edge(Dependence(i, j, ANTI, resource))
            for resource in writes_all[i] & writes_live[j]:
                graph.add_edge(Dependence(i, j, OUTPUT, resource))
    # Trap atomicity (§2.1.5): a microtrap aborts its word and the
    # program restarts, but writes to *macro-visible* registers are
    # irrevocable — they survive the restart.  Packing such a write
    # into the same word as a trap-capable op (at any phase) would
    # commit it even when the word is then aborted, so it must land in
    # a strictly later word; OUTPUT edges give exactly that ordering.
    macro = {r.name for r in machine.registers.macro_visible()}
    if macro:
        trap_capable = ["mem" in (reads[i] | writes_all[i])
                        for i in range(len(ops))]
        for j in range(len(ops)):
            dest = ops[j].dest
            if dest is None or dest.virtual or dest.name not in macro:
                continue
            for i in range(j):
                if trap_capable[i]:
                    graph.add_edge(Dependence(i, j, OUTPUT, "trap-order"))
    needed = terminator_reads(block, machine)
    for resource in needed:
        last_writer = None
        for i in range(len(ops)):
            if resource in writes_live[i]:
                last_writer = i
        if last_writer is not None:
            graph.add_edge(
                Dependence(last_writer, graph.terminator_node, FLOW, resource)
            )
    return graph
