"""MIR operands: registers (physical or virtual) and immediates.

Front ends that allow symbolic variables (EMPL, YALLL's unbound
registers) emit *virtual* registers, which the register allocator
(``repro.regalloc``) later rewrites to physical ones.  Front ends that
identify variables with machine registers (SIMPL, S*) emit physical
registers directly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Reg:
    """A register operand.

    ``virtual`` registers carry programmer-chosen names and exist only
    until allocation; physical registers name actual machine registers.
    """

    name: str
    virtual: bool = False

    def __str__(self) -> str:
        return f"%{self.name}" if self.virtual else self.name


@dataclass(frozen=True)
class Imm:
    """An immediate (constant) operand."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


#: Union type of all operand kinds.
Operand = Reg | Imm


def vreg(name: str) -> Reg:
    """Shorthand for a virtual register."""
    return Reg(name, virtual=True)


def preg(name: str) -> Reg:
    """Shorthand for a physical register."""
    return Reg(name, virtual=False)
