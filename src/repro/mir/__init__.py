"""Micro-IR (survey substrate S3).

The machine-agnostic intermediate form every front end lowers to:
micro-operations over registers/immediates, basic blocks with
terminators, programs with procedures and a constant pool, plus the
dependence and liveness analyses the composition and allocation layers
build on.
"""

from repro.mir.block import (
    FLAG_CONDITIONS,
    BasicBlock,
    Branch,
    Call,
    Exit,
    Fallthrough,
    Jump,
    MaskCase,
    Multiway,
    Ret,
    Terminator,
)
from repro.mir.deps import (
    ANTI,
    FLOW,
    OUTPUT,
    Dependence,
    DependenceGraph,
    build_dependence_graph,
    op_reads,
    op_writes,
    terminator_reads,
)
from repro.mir.liveness import Liveness, analyze_liveness, program_successors
from repro.mir.operands import Imm, Operand, Reg, preg, vreg
from repro.mir.ops import MicroOp, mop
from repro.mir.program import MicroProgram, Procedure, ProgramBuilder

__all__ = [
    "ANTI",
    "FLAG_CONDITIONS",
    "FLOW",
    "OUTPUT",
    "BasicBlock",
    "Branch",
    "Call",
    "Dependence",
    "DependenceGraph",
    "Exit",
    "Fallthrough",
    "Imm",
    "Jump",
    "Liveness",
    "MaskCase",
    "MicroOp",
    "MicroProgram",
    "Multiway",
    "Operand",
    "Procedure",
    "ProgramBuilder",
    "Reg",
    "Ret",
    "Terminator",
    "analyze_liveness",
    "build_dependence_graph",
    "mop",
    "op_reads",
    "op_writes",
    "preg",
    "program_successors",
    "terminator_reads",
    "vreg",
]
