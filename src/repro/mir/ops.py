"""Micro-operations: the atoms of the micro-IR.

A :class:`MicroOp` is a *semantic* operation (``add``, ``mov``,
``read`` …) with concrete operands.  It is machine-agnostic until
composition, when a concrete :class:`~repro.machine.opspec.OpSpec`
variant is chosen for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import MIRError
from repro.mir.operands import Imm, Operand, Reg


@dataclass(frozen=True)
class MicroOp:
    """One semantic micro-operation.

    Attributes:
        op: Semantic operation name; must exist on the target machine
            (or be expanded by the back end before composition).
        dest: Destination register, if the op writes one.
        srcs: Source operands (registers and immediates).
        comment: Free-form annotation shown in listings (typically the
            source line that produced the op).
        line: Source line number, 0 if synthetic.
    """

    op: str
    dest: Reg | None = None
    srcs: tuple[Operand, ...] = ()
    comment: str = ""
    line: int = 0

    def __post_init__(self) -> None:
        if self.dest is not None and not isinstance(self.dest, Reg):
            raise MIRError(f"{self.op}: destination must be a register")
        for src in self.srcs:
            if not isinstance(src, (Reg, Imm)):
                raise MIRError(f"{self.op}: bad source operand {src!r}")

    def src_regs(self) -> tuple[Reg, ...]:
        """Register sources, in order."""
        return tuple(s for s in self.srcs if isinstance(s, Reg))

    def src_imms(self) -> tuple[Imm, ...]:
        """Immediate sources, in order."""
        return tuple(s for s in self.srcs if isinstance(s, Imm))

    def regs(self) -> tuple[Reg, ...]:
        """All register operands (sources plus destination)."""
        regs = list(self.src_regs())
        if self.dest is not None:
            regs.append(self.dest)
        return tuple(regs)

    def with_operands(
        self, dest: Reg | None, srcs: tuple[Operand, ...]
    ) -> "MicroOp":
        """A copy of this op with replaced operands."""
        return replace(self, dest=dest, srcs=srcs)

    def rename(self, mapping: dict[Reg, Reg]) -> "MicroOp":
        """A copy with registers substituted through ``mapping``."""
        new_dest = mapping.get(self.dest, self.dest) if self.dest else None
        new_srcs = tuple(
            mapping.get(s, s) if isinstance(s, Reg) else s for s in self.srcs
        )
        return self.with_operands(new_dest, new_srcs)

    def __str__(self) -> str:
        parts = ", ".join(str(s) for s in self.srcs)
        if self.dest is not None:
            head = f"{self.op} {self.dest}" + (f", {parts}" if parts else "")
        else:
            head = f"{self.op} {parts}" if parts else self.op
        return head


def mop(op: str, dest: Reg | None = None, *srcs: Operand, **kwargs) -> MicroOp:
    """Terse MicroOp constructor used heavily by code generators."""
    return MicroOp(op=op, dest=dest, srcs=tuple(srcs), **kwargs)
