"""The single language/machine registry (survey substrate S18).

Three independent dispatch tables — ``cli.py``'s ``COMPILERS``, the
fault campaign's compiler map and the benchmark corpus — used to be
kept in sync by hand.  They now all resolve through this module:
adding a language is one ``register_language`` call in its front end,
adding a machine one ``register_machine`` call next to its builder.

Specs are declarative.  A :class:`LanguageSpec` names its front end,
carries its :class:`~repro.pipeline.core.Pipeline` and advertises
capabilities (the survey's design-issue vocabulary: programmer
binding, symbolic variables, verification, …); a
:class:`MachineSpec` names a builder and the machine's organisation.
Registration happens at import of ``repro.lang`` / ``repro.machine.
machines``; lookup functions import those packages lazily, so the
registry itself stays dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import MachineError, ReproError
from repro.obs.tracer import NULL_TRACER


class RegistryError(ReproError):
    """An unknown language name, or a malformed registration."""


# ----------------------------------------------------------------------
# Languages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LanguageSpec:
    """One registered front end.

    Attributes:
        name: Lookup key (``"yalll"``).
        title: Human-readable long name.
        section: Where the survey treats the language.
        pipeline: The language's compilation pipeline.
        capabilities: Design-issue vocabulary the language offers
            (``programmer_binding``, ``symbolic_variables``,
            ``verification``, ``par_extension``, …).
        default_composer: Name of the historical default composition
            strategy (reported by ``python -m repro languages``).
    """

    name: str
    title: str
    section: str
    pipeline: object
    capabilities: tuple[str, ...] = ()
    default_composer: str = ""

    def compile(self, source, machine, *, tracer=NULL_TRACER, cache=None,
                dump_after=None, **options):
        """Compile through the language's pipeline (uniform signature)."""
        return self.pipeline.run(
            source, machine, tracer=tracer, cache=cache,
            dump_after=dump_after, **options,
        )

    def has(self, capability: str) -> bool:
        return capability in self.capabilities

    def stage_names(self) -> tuple[str, ...]:
        return self.pipeline.stage_names()


_LANGUAGES: dict[str, LanguageSpec] = {}


def register_language(spec: LanguageSpec) -> LanguageSpec:
    """Register a front end; re-registration must be identical-by-name.

    Idempotent per name so module reloads don't explode, but a second
    registration silently *replaces* only the same name — there is no
    aliasing.
    """
    _LANGUAGES[spec.name] = spec
    return spec


def _ensure_languages() -> None:
    if not _LANGUAGES:
        import repro.lang  # noqa: F401  (front ends register on import)


def language_names() -> list[str]:
    """Sorted names of every registered language."""
    _ensure_languages()
    return sorted(_LANGUAGES)


def get_language(name: str) -> LanguageSpec:
    """Look up a front end by name."""
    _ensure_languages()
    try:
        return _LANGUAGES[name]
    except KeyError:
        raise RegistryError(
            f"unknown language {name!r}; registered: "
            f"{', '.join(sorted(_LANGUAGES))}"
        ) from None


# ----------------------------------------------------------------------
# Differential-test program generators
# ----------------------------------------------------------------------
#: lang name -> generator callable ``(machine, rng, size) -> GeneratedCase``
#: (see :mod:`repro.difftest.generators`).  Kept beside the language
#: table so "every registered language has a generator" is a checkable
#: property, not a convention.
_GENERATORS: dict[str, Callable] = {}


def register_generator(lang: str, generator: Callable) -> Callable:
    """Register a difftest source generator for a language."""
    _GENERATORS[lang] = generator
    return generator


def _ensure_generators() -> None:
    if not _GENERATORS:
        import repro.difftest.generators  # noqa: F401  (registers on import)


def generator_names() -> list[str]:
    """Sorted names of every language with a registered generator."""
    _ensure_generators()
    return sorted(_GENERATORS)


def get_generator(lang: str) -> Callable:
    """Look up a difftest generator by language name."""
    _ensure_generators()
    try:
        return _GENERATORS[lang]
    except KeyError:
        raise RegistryError(
            f"no difftest generator for language {lang!r}; registered: "
            f"{', '.join(sorted(_GENERATORS))}"
        ) from None


# ----------------------------------------------------------------------
# Machines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MachineSpec:
    """One registered machine description builder.

    ``build()`` returns a fresh, validated
    :class:`~repro.machine.machine.MicroArchitecture` — machine
    instances are mutable working objects, so the registry hands out
    new ones rather than caching.
    """

    name: str
    builder: Callable[[], object]
    organisation: str = "horizontal"
    description: str = ""
    capabilities: tuple[str, ...] = field(default=())

    def build(self):
        return self.builder()


_MACHINES: dict[str, MachineSpec] = {}


def register_machine(spec: MachineSpec) -> MachineSpec:
    """Register a machine description builder."""
    _MACHINES[spec.name] = spec
    return spec


def _ensure_machines() -> None:
    if not _MACHINES:
        import repro.machine.machines  # noqa: F401  (registers on import)


def machine_names() -> list[str]:
    """Names of every registered machine, in registration order."""
    _ensure_machines()
    return list(_MACHINES)


def get_machine_spec(name: str) -> MachineSpec:
    """Look up a machine spec by name."""
    _ensure_machines()
    try:
        return _MACHINES[name]
    except KeyError:
        # MachineError, not RegistryError: machine lookup predates the
        # registry and callers catch the machine-layer error.
        raise MachineError(
            f"unknown machine {name!r}; available: {', '.join(_MACHINES)}"
        ) from None


def build_machine(name: str):
    """Build a fresh machine description by name."""
    return get_machine_spec(name).build()
