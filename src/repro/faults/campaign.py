"""Fault campaigns: run a program under N injected faults, classify.

A campaign compiles a program (or takes one precompiled), executes a
fault-free **golden run**, derives the :class:`FaultSpace` from what
that run actually exercised, draws a deterministic
:class:`FaultPlan` from the seed, and re-runs the program once per
scenario with the scenario's injector attached.  Every run is bounded
by a cycle watchdog (simulated time — deterministic), so a campaign
can never hang on a fault that wedges the microprogram.

Outcome taxonomy (classic fault-injection vocabulary):

* ``masked`` — the run completed and macro-visible state matches the
  golden run, with no extra microtraps; the fault had no effect.
* ``recovered`` — the run trapped at least once, restarted per §2.1.5
  and still produced golden-identical macro state: detected and
  recovered.
* ``sdc`` — silent data corruption: the run completed but the exit
  value or a macro-visible register differs from the golden run.
  This is exactly what the survey's ``incread`` bug produces.
* ``detected`` — the toolkit aborted the run with a typed error
  (unserviced trap, illegal control-store encoding, trap-loop limit):
  the fault was detected, nothing was silently corrupted.
* ``hang`` — the cycle or wall-clock watchdog expired.

The §2.1.5 restartability invariant is checked mechanically: any run
that trapped and completed must show golden-identical macro-visible
registers.  ``restart_invariant_violations()`` returns the scenarios
that break it — empty for programs transformed by
``make_restart_safe``, non-empty for the naive ``incread``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.loader import ControlStore
from repro.errors import (
    CampaignWorkerError,
    FaultPlanError,
    ReproError,
    SimulationLimitError,
)
from repro.faults.injectors import build_injector
from repro.faults.plan import FaultPlan, FaultSpace, FaultSpec
from repro.obs.aggregate import CampaignMetrics
from repro.obs.timeline import TraceRecorder
from repro.obs.tracer import NULL_TRACER
from repro.sim.batch import batch_refusal
from repro.sim.simulator import Simulator

#: All outcome classes, in reporting order.
CLASSIFICATIONS = ("masked", "recovered", "sdc", "detected", "hang")

#: Default simulated-cycle watchdog multiplier over the golden run.
#: Interrupt storms legitimately inflate runs (each serviced interrupt
#: charges service cycles at every poll), so the factor is generous;
#: it only exists to bound genuinely wedged runs.
DEFAULT_CYCLE_FACTOR = 64

#: How many times a ``--jobs`` shard whose worker process *died* is
#: re-run before the campaign gives up with a typed
#: :class:`~repro.errors.CampaignWorkerError`.  Scenario execution is
#: pure, so a re-run is byte-identical — retries only ever turn a
#: transient host failure (OOM kill, stray signal) into a result.
DEFAULT_SHARD_REQUEUES = 2


def default_trap_service(state, trap) -> None:
    """Map the faulted page when the trap names an address, else no-op.

    Handles both genuine pagefaults (``page N (address A)``) and
    injected transient faults (``injected transient fault (address
    A)``); the latter need no service at all, and double-mapping a
    mapped page is harmless.
    """
    detail = getattr(trap, "detail", "")
    marker = "address "
    if marker in detail:
        try:
            address = int(detail.split(marker, 1)[1].rstrip(")"))
        except ValueError:
            return
        state.memory.map_address(address)


def _ignore_interrupt(state) -> None:
    """Interrupt handler for campaigns: acknowledge and drop."""


@dataclass
class GoldenRun:
    """The fault-free reference execution a campaign compares against."""

    exit_value: int | None
    cycles: int
    instructions: int
    traps: int
    macro_registers: dict[str, int]
    reads: int
    writes: int

    def to_json(self) -> dict:
        return {
            "exit_value": self.exit_value,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "traps": self.traps,
            "macro_registers": dict(sorted(self.macro_registers.items())),
            "reads": self.reads,
            "writes": self.writes,
        }


@dataclass
class ScenarioOutcome:
    """One injected-fault run, classified."""

    index: int
    spec: str
    classification: str
    fired: list[dict] = field(default_factory=list)
    traps: int = 0
    interrupts: int = 0
    cycles: int = 0
    exit_value: int | None = None
    macro_registers: dict[str, int] = field(default_factory=dict)
    error: str = ""

    def to_json(self) -> dict:
        record = {
            "index": self.index,
            "spec": self.spec,
            "classification": self.classification,
            "fired": [dict(sorted(f.items())) for f in self.fired],
            "traps": self.traps,
            "interrupts": self.interrupts,
            "cycles": self.cycles,
            "exit_value": self.exit_value,
            "macro_registers": dict(sorted(self.macro_registers.items())),
        }
        if self.error:
            record["error"] = self.error
        return record


@dataclass
class CampaignResult:
    """Everything one (program, machine) campaign produced."""

    program: str
    lang: str
    machine: str
    seed: int
    golden: GoldenRun
    outcomes: list[ScenarioOutcome] = field(default_factory=list)
    restart_hazards: list[str] = field(default_factory=list)
    #: Shard-mergeable telemetry rollup; populated only when the
    #: campaign ran with ``collect_metrics=True`` (it costs a
    #: recorder per run), and omitted from the JSON otherwise so
    #: metrics-off reports are unchanged byte for byte.
    metrics: CampaignMetrics | None = None

    def counts(self) -> dict[str, int]:
        tally = {name: 0 for name in CLASSIFICATIONS}
        for outcome in self.outcomes:
            tally[outcome.classification] += 1
        return tally

    def rate(self, classification: str) -> float:
        if not self.outcomes:
            return 0.0
        return self.counts()[classification] / len(self.outcomes)

    def trap_scenarios(self) -> list[ScenarioOutcome]:
        """Scenarios whose run serviced at least one microtrap."""
        return [o for o in self.outcomes if o.traps > 0]

    def restart_invariant_violations(self) -> list[ScenarioOutcome]:
        """§2.1.5 violations: trapped, completed, macro state differs.

        A restart-safe program must never appear here; the survey's
        naive ``incread`` lands here with its double increment.
        """
        completed = ("masked", "recovered", "sdc")
        return [
            o for o in self.outcomes
            if o.traps > 0 and o.classification in completed
            and o.macro_registers != self.golden.macro_registers
        ]

    def to_json(self) -> dict:
        record = {
            "program": self.program,
            "lang": self.lang,
            "machine": self.machine,
            "seed": self.seed,
            "scenarios": len(self.outcomes),
            "golden": self.golden.to_json(),
            "counts": self.counts(),
            "restart_hazards": list(self.restart_hazards),
            "restart_invariant_violations": [
                o.index for o in self.restart_invariant_violations()
            ],
            "outcomes": [o.to_json() for o in self.outcomes],
        }
        if self.metrics is not None:
            record["metrics"] = self.metrics.to_json()
        return record


# ----------------------------------------------------------------------
def _fresh_simulator(
    machine, loaded, *, registers, memory, mapping, tracer,
    engine: str = "interpretive", collect_profile: bool = False,
    deadline_s: float | None = None,
) -> Simulator:
    store = ControlStore(machine)
    store.load(loaded)
    recorder = (
        TraceRecorder(tracer)
        if tracer.enabled or collect_profile else None
    )
    simulator = Simulator(
        machine, store,
        trap_service=default_trap_service,
        interrupt_handler=_ignore_interrupt,
        recorder=recorder,
        engine=engine,
        deadline_s=deadline_s,
    )
    for name, value in (registers or {}).items():
        simulator.state.write_reg(mapping.get(name, name), value)
    for address, value in (memory or {}).items():
        simulator.state.memory.load_words(address, [value])
    return simulator


def _harvest_run(
    metrics: CampaignMetrics, simulator, classification: str | None,
) -> None:
    """Fold one finished (or aborted) run into a metrics rollup.

    The scenario simulator is fresh, so its lifetime plan-cache stats
    *are* the run's stats; harvesting from the simulator rather than
    the :class:`RunResult` also covers runs that ended in a typed
    error, where no result object exists but the recorder kept
    counting right up to the abort.
    """
    profile = simulator.recorder.profile
    plan_counters = None
    trace_counters = None
    if simulator.engine in ("decoded", "traced"):
        plan_counters = simulator.plan_cache_counters(
            profile.instructions, None
        )
    if simulator.engine == "traced":
        # Scenario runs carry injectors, so their JITs never engage
        # and harvest all-zero counters; the golden run's compiles,
        # dispatches and bailouts land here.
        trace_counters = simulator.trace_cache_counters(None)
    metrics.add_run(
        profile, classification=classification,
        plan_cache=plan_counters, trace_cache=trace_counters,
    )


def _macro_registers(simulator) -> dict[str, int]:
    return {
        register.name: simulator.state.registers[register.name]
        for register in simulator.machine.registers.macro_visible()
    }


def fault_space_for(machine, loaded, golden: GoldenRun) -> FaultSpace:
    """The scenario envelope for one compiled program + golden run."""
    return FaultSpace(
        n_words=len(loaded),
        word_bits=machine.control.width,
        registers=tuple(
            r.name for r in machine.registers if not r.readonly
        ),
        register_bits=machine.word_size,
        reads=golden.reads,
        writes=golden.writes,
        cycles=golden.cycles,
    )


def run_campaign_loaded(
    loaded,
    machine,
    *,
    n: int = 25,
    seed: int = 7,
    lang: str = "mir",
    plan: FaultPlan | None = None,
    registers: dict[str, int] | None = None,
    memory: dict[int, int] | None = None,
    mapping: dict[str, str] | None = None,
    restart_hazards: list | None = None,
    cycle_factor: int = DEFAULT_CYCLE_FACTOR,
    tracer=NULL_TRACER,
    jobs: int = 1,
    engine: str = "decoded",
    batch: int = 1,
    compile_each=None,
    collect_metrics: bool = False,
    deadline_s: float | None = None,
) -> CampaignResult:
    """Run a campaign over an already-assembled program.

    ``plan`` overrides seeded generation with explicit scenarios (the
    CLI's ``--fault`` path and regression tests use this).

    ``jobs > 1`` shards the scenarios round-robin across a
    ``multiprocessing`` pool.  Scenario indices are fixed before
    sharding and results are merged back into index order, so the
    resulting report is byte-identical to the serial run regardless of
    completion order.  A recording tracer forces the serial path (its
    event list cannot be meaningfully merged across processes).

    ``engine`` selects the simulator execution engine for golden and
    scenario runs alike (see :class:`repro.sim.simulator.Simulator`);
    both engines classify identically — decoded is just faster.

    ``batch`` groups scenarios into candidate lockstep batches for
    :mod:`repro.sim.batch`.  Every group is offered to batched
    admission (:func:`~repro.sim.batch.batch_refusal`) — and every
    group is refused, because scenario runs carry fault injectors,
    which need per-microinstruction visibility.  Each lane therefore
    peels to the scalar engine at admission, which is why ``--batch
    N`` campaign reports are byte-identical to ``--batch 1`` at every
    batch size; the batched driver's throughput win lands on clean
    homogeneous sweeps (difftest lanes, benchmark workloads).

    ``compile_each`` (internal, used by :func:`run_campaign` when a
    compile cache is supplied) is called once per serial scenario and
    returns the program to run — modelling the "compile per scenario"
    pattern the cache collapses to one real compilation.

    ``collect_metrics`` attaches a profile recorder to the golden run
    and every scenario and folds the results into
    ``CampaignResult.metrics``.  Shard rollups merge with the
    associative/commutative laws of :mod:`repro.obs.aggregate`, so
    the metrics block is byte-identical between serial and ``--jobs``
    runs of the same campaign.

    ``deadline_s`` is a per-run wall-clock budget handed to
    ``Simulator.deadline_s`` for the golden run and every scenario; a
    run that overruns it raises the typed
    :class:`~repro.errors.SimulationLimitError` (``kind="deadline"``)
    — scenarios classify it as ``hang``, a golden-run overrun
    propagates to the caller.  The simulated-cycle watchdog stays the
    deterministic bound; the deadline is the wall-clock backstop the
    serve worker pool leans on.
    """
    mapping = mapping or {}
    metrics = CampaignMetrics() if collect_metrics else None

    with tracer.span("golden", cat="fault", program=loaded.name,
                     machine=machine.name) as span:
        simulator = _fresh_simulator(
            machine, loaded, registers=registers, memory=memory,
            mapping=mapping, tracer=NULL_TRACER, engine=engine,
            collect_profile=collect_metrics, deadline_s=deadline_s,
        )
        result = simulator.run(loaded.name)
        golden = GoldenRun(
            exit_value=result.exit_value,
            cycles=result.cycles,
            instructions=result.instructions,
            traps=result.traps,
            macro_registers=_macro_registers(simulator),
            reads=simulator.state.memory.reads,
            writes=simulator.state.memory.writes,
        )
        if metrics is not None:
            _harvest_run(metrics, simulator, None)
        span.set(cycles=golden.cycles, exit_value=golden.exit_value)

    if plan is None:
        plan = FaultPlan.generate(
            seed, fault_space_for(machine, loaded, golden), n
        )
    watchdog = max(2_000, golden.cycles * cycle_factor)

    campaign = CampaignResult(
        program=loaded.name,
        lang=lang,
        machine=machine.name,
        seed=plan.seed,
        golden=golden,
        restart_hazards=[str(h) for h in (restart_hazards or [])],
    )
    indexed = list(enumerate(plan.specs))
    if jobs > 1 and len(indexed) > 1 and not tracer.enabled:
        campaign.outcomes, shard_metrics = _run_scenarios_parallel(
            indexed, machine, loaded, golden,
            registers=registers, memory=memory, mapping=mapping,
            watchdog=watchdog, jobs=jobs, engine=engine, batch=batch,
            collect_metrics=collect_metrics, deadline_s=deadline_s,
        )
        if metrics is not None:
            campaign.metrics = CampaignMetrics.merged(
                [metrics, *shard_metrics]
            )
        return campaign
    for group in _batched_groups(
        indexed, machine, engine=engine, batch=batch, deadline_s=deadline_s,
    ):
        for index, fault_spec in group:
            scenario_loaded = (
                compile_each() if compile_each is not None else loaded
            )
            campaign.outcomes.append(
                _run_scenario(
                    index, fault_spec, machine, scenario_loaded, golden,
                    registers=registers, memory=memory, mapping=mapping,
                    watchdog=watchdog, tracer=tracer, engine=engine,
                    metrics=metrics, deadline_s=deadline_s,
                )
            )
    campaign.metrics = metrics
    return campaign


def _batched_groups(
    indexed, machine, *, engine, batch, deadline_s,
):
    """Chunk scenarios into candidate lockstep batches.

    Every group is offered to batched admission; scenario runs carry
    fault injectors, so :func:`~repro.sim.batch.batch_refusal` always
    refuses (reason ``"injector"``) and every lane takes the scalar
    path.  The consult is real — if injector-transparent batching ever
    lands, this is the seam where it engages — and the refusal is what
    guarantees ``--batch N`` report byte-identity today.
    """
    size = max(1, batch)
    for start in range(0, len(indexed), size):
        group = indexed[start:start + size]
        if batch > 1:
            batch_refusal(
                machine, lanes=len(group), engine=engine,
                injector=True, deadline_s=deadline_s,
            )
        yield group


def _shard_worker(args) -> tuple:
    """Top-level worker target: run one shard of scenarios.

    Receives everything by value (machines, programs and golden runs
    all pickle); returns the shard's outcomes plus its local metrics
    rollup (or ``None`` when metrics are off).  Classification uses no
    randomness and no wall-clock quantities, so outcomes are identical
    to what the serial loop would have produced for the same indices —
    which is also why a *re-run* of a crashed shard is byte-identical
    to the run that died.
    """
    (shard, machine, loaded, golden, registers, memory, mapping,
     watchdog, engine, batch, collect_metrics, deadline_s) = args
    metrics = CampaignMetrics() if collect_metrics else None
    outcomes = [
        _run_scenario(
            index, fault_spec, machine, loaded, golden,
            registers=registers, memory=memory, mapping=mapping,
            watchdog=watchdog, tracer=NULL_TRACER, engine=engine,
            metrics=metrics, deadline_s=deadline_s,
        )
        for group in _batched_groups(
            shard, machine, engine=engine, batch=batch,
            deadline_s=deadline_s,
        )
        for index, fault_spec in group
    ]
    return outcomes, metrics


def _shard_entry(conn, args) -> None:
    """Process entry: run the shard, ship the result, exit."""
    result = _shard_worker(args)
    conn.send(result)
    conn.close()


def _run_scenarios_parallel(
    indexed, machine, loaded, golden, *,
    registers, memory, mapping, watchdog, jobs, engine,
    batch: int = 1,
    collect_metrics: bool = False,
    deadline_s: float | None = None,
    max_requeues: int = DEFAULT_SHARD_REQUEUES,
) -> tuple[list[ScenarioOutcome], list[CampaignMetrics]]:
    """Shard scenarios over supervised processes, merge to index order.

    Unlike the ``multiprocessing.Pool.map`` this replaced, worker
    death is an *observed event*: each shard runs in its own process
    whose sentinel is multiplexed alongside its result pipe, so a
    SIGKILLed worker (OOM, segfault, a ``kill:`` chaos injector) is
    detected immediately, the shard is re-run up to ``max_requeues``
    times, and persistent death surfaces as a typed
    :class:`~repro.errors.CampaignWorkerError` naming the shard and
    its re-queue count — never a hang on a result that cannot come.
    """
    import multiprocessing
    from multiprocessing.connection import wait as mp_wait

    jobs = min(jobs, len(indexed))
    shards = [indexed[offset::jobs] for offset in range(jobs)]
    tasks = [
        (shard, machine, loaded, golden, registers, memory, mapping,
         watchdog, engine, batch, collect_metrics, deadline_s)
        for shard in shards
    ]
    ctx = multiprocessing.get_context()
    results: list[tuple | None] = [None] * len(shards)
    requeues = [0] * len(shards)
    running: dict[int, tuple] = {}

    def spawn(shard_index: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_shard_entry, args=(child_conn, tasks[shard_index]),
            daemon=True,
        )
        process.start()
        child_conn.close()
        running[shard_index] = (process, parent_conn)

    def reap(shard_index: int) -> int | None:
        process, conn = running.pop(shard_index)
        exitcode = process.exitcode
        try:
            conn.close()
        except OSError:
            pass
        process.join(timeout=5)
        return exitcode if exitcode is not None else process.exitcode

    try:
        for shard_index in range(len(shards)):
            spawn(shard_index)
        while running:
            conn_index = {
                conn: i for i, (_, conn) in running.items()
            }
            sentinel_index = {
                process.sentinel: i
                for i, (process, _) in running.items()
            }
            ready = mp_wait([*conn_index, *sentinel_index])
            done: set[int] = set()
            crashed: set[int] = set()
            for item in ready:
                shard_index = conn_index.get(item)
                if shard_index is not None:
                    if shard_index in done or shard_index in crashed:
                        continue
                    try:
                        results[shard_index] = item.recv()
                        done.add(shard_index)
                    except (EOFError, OSError):
                        crashed.add(shard_index)
                    continue
                shard_index = sentinel_index[item]
                if shard_index not in done:
                    crashed.add(shard_index)
            for shard_index in done:
                reap(shard_index)
                crashed.discard(shard_index)
            for shard_index in crashed:
                if shard_index not in running:
                    continue
                exitcode = reap(shard_index)
                requeues[shard_index] += 1
                if requeues[shard_index] > max_requeues:
                    raise CampaignWorkerError(
                        f"campaign shard {shard_index} worker died "
                        f"(exit code {exitcode}) and stayed dead "
                        f"through {max_requeues} re-queues",
                        shard_index=shard_index,
                        requeues=requeues[shard_index] - 1,
                        exitcode=exitcode,
                    )
                spawn(shard_index)
    finally:
        for shard_index in list(running):
            process, conn = running.pop(shard_index)
            process.kill()
            try:
                conn.close()
            except OSError:
                pass
            process.join(timeout=5)

    merged = [
        outcome
        for shard_result in results if shard_result is not None
        for outcome in shard_result[0]
    ]
    merged.sort(key=lambda outcome: outcome.index)
    shard_metrics = [
        shard_result[1] for shard_result in results
        if shard_result is not None and shard_result[1] is not None
    ]
    return merged, shard_metrics


def _run_scenario(
    index: int,
    fault_spec: FaultSpec,
    machine,
    loaded,
    golden: GoldenRun,
    *,
    registers,
    memory,
    mapping,
    watchdog: int,
    tracer,
    engine: str = "interpretive",
    metrics: CampaignMetrics | None = None,
    deadline_s: float | None = None,
) -> ScenarioOutcome:
    rendered = fault_spec.render()
    with tracer.span(f"scenario {index:03d}", cat="fault",
                     spec=rendered) as span:
        simulator = _fresh_simulator(
            machine, loaded, registers=registers, memory=memory,
            mapping=mapping, tracer=tracer, engine=engine,
            collect_profile=metrics is not None, deadline_s=deadline_s,
        )
        injector = build_injector(fault_spec).attach(simulator)
        outcome = ScenarioOutcome(index=index, spec=rendered,
                                  classification="masked")
        try:
            result = simulator.run(loaded.name, max_cycles=watchdog)
        except SimulationLimitError as error:
            outcome.classification = (
                "hang" if error.kind in ("cycles", "deadline") else "detected"
            )
            outcome.error = str(error)
        except ReproError as error:
            outcome.classification = "detected"
            outcome.error = str(error)
        else:
            outcome.traps = result.traps
            outcome.interrupts = result.interrupts_serviced
            outcome.cycles = result.cycles
            outcome.exit_value = result.exit_value
            outcome.macro_registers = _macro_registers(simulator)
            identical = (
                result.exit_value == golden.exit_value
                and outcome.macro_registers == golden.macro_registers
            )
            if not identical:
                outcome.classification = "sdc"
            elif result.traps > golden.traps:
                outcome.classification = "recovered"
            else:
                outcome.classification = "masked"
        outcome.fired = list(injector.fired)
        if metrics is not None:
            _harvest_run(metrics, simulator, outcome.classification)
        span.set(classification=outcome.classification,
                 fired=len(outcome.fired))
    return outcome


# ----------------------------------------------------------------------
def run_campaign(
    source: str,
    lang: str,
    machine,
    *,
    n: int = 25,
    seed: int = 7,
    restart_safe: bool = False,
    plan: FaultPlan | None = None,
    registers: dict[str, int] | None = None,
    memory: dict[int, int] | None = None,
    cycle_factor: int = DEFAULT_CYCLE_FACTOR,
    tracer=NULL_TRACER,
    jobs: int = 1,
    engine: str = "decoded",
    batch: int = 1,
    cache=None,
    collect_metrics: bool = False,
    deadline_s: float | None = None,
) -> CampaignResult:
    """Compile ``source`` in ``lang`` for ``machine`` and campaign it.

    With a :class:`repro.cache.CompileCache` in ``cache`` the golden
    program is compiled through the cache, and each serial scenario
    re-probes it (one real compilation, N-1 hits — the pattern that
    used to be N compilations across campaign harness variants).

    With ``collect_metrics`` the result carries a
    :class:`CampaignMetrics` rollup; the compile-cache family counts
    only the golden compilation's probes, because per-scenario
    re-probing is a serial-path modelling detail that ``--jobs``
    legitimately skips — including it would break the serial/sharded
    byte-identity contract.
    """
    from repro.registry import RegistryError, get_language, language_names

    try:
        spec = get_language(lang)
    except RegistryError:
        raise FaultPlanError(
            f"unknown language {lang!r}; expected one of "
            f"{', '.join(language_names())}"
        ) from None
    cache_before = None
    if cache is not None and collect_metrics:
        cache_before = (
            cache.stats.hits, cache.stats.misses, cache.stats.disk_hits,
            cache.stats.evictions, cache.stats.corrupt,
        )
    result = spec.compile(
        source, machine, tracer=tracer, restart_safe=restart_safe,
        cache=cache,
    )
    golden_cache_delta = None
    if cache_before is not None:
        from repro.cache import CacheStats

        golden_cache_delta = CacheStats(
            hits=cache.stats.hits - cache_before[0],
            misses=cache.stats.misses - cache_before[1],
            disk_hits=cache.stats.disk_hits - cache_before[2],
            evictions=cache.stats.evictions - cache_before[3],
            corrupt=cache.stats.corrupt - cache_before[4],
        )
    compile_each = None
    if cache is not None:
        def compile_each():
            return spec.compile(
                source, machine, restart_safe=restart_safe, cache=cache
            ).loaded
    campaign = run_campaign_loaded(
        result.loaded, machine,
        n=n, seed=seed, lang=lang, plan=plan,
        registers=registers, memory=memory,
        mapping=result.allocation.mapping,
        restart_hazards=result.restart_hazards,
        cycle_factor=cycle_factor, tracer=tracer,
        jobs=jobs, engine=engine, batch=batch,
        compile_each=compile_each,
        collect_metrics=collect_metrics, deadline_s=deadline_s,
    )
    if golden_cache_delta is not None and campaign.metrics is not None:
        campaign.metrics.add_cache(golden_cache_delta)
    return campaign


def run_matrix(
    sources: dict[str, str],
    machines: list,
    *,
    n: int = 25,
    seed: int = 7,
    restart_safe: bool = False,
    registers: dict[str, int] | None = None,
    memory: dict[int, int] | None = None,
    tracer=NULL_TRACER,
    jobs: int = 1,
    engine: str = "decoded",
    batch: int = 1,
    cache=None,
    collect_metrics: bool = False,
) -> list[CampaignResult]:
    """Campaign every (language, machine) pair of the matrix.

    ``sources`` maps language name -> source text (the same program
    expressed per language, as in the cross-language test suite);
    ``machines`` holds :class:`MicroArchitecture` instances.  Each
    cell draws its own plan from the shared seed.  ``jobs``/``engine``
    and the compile ``cache`` pass through to every cell's campaign;
    with a cache, each cell's program compiles exactly once no matter
    how many scenarios probe it.
    """
    results = []
    for lang in sorted(sources):
        for machine in machines:
            results.append(
                run_campaign(
                    sources[lang], lang, machine,
                    n=n, seed=seed, restart_safe=restart_safe,
                    registers=registers, memory=memory, tracer=tracer,
                    jobs=jobs, engine=engine, batch=batch, cache=cache,
                    collect_metrics=collect_metrics,
                )
            )
    return results
