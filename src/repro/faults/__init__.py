"""repro.faults: deterministic fault injection + campaign harness.

Stresses the survey's §2.1.5 restartability story mechanically: inject
control-store bit flips, stuck-at registers, transient memory faults
and interrupt storms into simulated runs, then classify each outcome
(masked / recovered / sdc / detected / hang) against a fault-free
golden run.  Everything is seeded and wall-clock-free, so campaigns
are reproducible byte-for-byte from ``seed`` alone.
"""

from repro.faults.campaign import (
    CLASSIFICATIONS,
    CampaignResult,
    GoldenRun,
    ScenarioOutcome,
    default_trap_service,
    fault_space_for,
    run_campaign,
    run_campaign_loaded,
    run_matrix,
)
from repro.faults.injectors import (
    CompositeInjector,
    ControlStoreBitFlip,
    FaultInjector,
    InterruptStorm,
    ProcessKill,
    StuckAtRegister,
    TransientMemoryFault,
    build_injector,
    compute_flip_effect,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpace,
    FaultSpec,
    parse_fault_spec,
    spec,
)
from repro.faults.report import campaign_json, render_campaign, render_matrix

__all__ = [
    "CLASSIFICATIONS",
    "FAULT_KINDS",
    "CampaignResult",
    "CompositeInjector",
    "ControlStoreBitFlip",
    "FaultInjector",
    "FaultPlan",
    "FaultSpace",
    "FaultSpec",
    "GoldenRun",
    "InterruptStorm",
    "ProcessKill",
    "ScenarioOutcome",
    "StuckAtRegister",
    "TransientMemoryFault",
    "build_injector",
    "campaign_json",
    "compute_flip_effect",
    "default_trap_service",
    "fault_space_for",
    "parse_fault_spec",
    "render_campaign",
    "render_matrix",
    "run_campaign",
    "run_campaign_loaded",
    "run_matrix",
    "spec",
]
