"""Deterministic campaign reports (text and JSON).

Reports contain only simulated quantities (cycles, trap counts,
classifications) — never wall-clock timings — so a fixed-seed campaign
renders byte-for-byte identically on every run and platform.  JSON is
serialised with sorted keys for the same reason.
"""

from __future__ import annotations

import json

from repro.faults.campaign import CLASSIFICATIONS, CampaignResult


def render_campaign(result: CampaignResult, *, scenarios: bool = True) -> str:
    """Human-readable report for one (program, machine) campaign."""
    lines = [
        f"fault campaign: {result.program} [{result.lang}] "
        f"on {result.machine}, seed {result.seed}, "
        f"{len(result.outcomes)} scenarios",
        f"  golden run: exit={result.golden.exit_value} "
        f"cycles={result.golden.cycles} traps={result.golden.traps}",
    ]
    if result.restart_hazards:
        lines.append(f"  restart hazards: {len(result.restart_hazards)}")
        for hazard in result.restart_hazards:
            lines.append(f"    - {hazard}")
    counts = result.counts()
    total = len(result.outcomes) or 1
    for name in CLASSIFICATIONS:
        lines.append(
            f"  {name:<10} {counts[name]:3d}  {100.0 * counts[name] / total:5.1f}%"
        )
    violations = result.restart_invariant_violations()
    if violations:
        lines.append(
            "  restart invariant (2.1.5): VIOLATED in "
            f"{len(violations)} scenario(s): "
            + ", ".join(f"#{o.index:02d}" for o in violations)
        )
    else:
        trapped = len(result.trap_scenarios())
        lines.append(
            f"  restart invariant (2.1.5): held in all "
            f"{trapped} trap scenario(s)"
        )
    if scenarios:
        lines.append("  scenarios:")
        for outcome in result.outcomes:
            detail = f"traps={outcome.traps} cycles={outcome.cycles}"
            if outcome.error:
                detail = outcome.error
            lines.append(
                f"    #{outcome.index:02d} {outcome.spec:<28} "
                f"{outcome.classification:<10} {detail}"
            )
    if result.metrics is not None:
        lines.append(result.metrics.render())
    return "\n".join(lines)


def render_matrix(results: list[CampaignResult]) -> str:
    """Summary table for a language x machine campaign matrix."""
    header = (
        f"{'program':<14} {'lang':<7} {'machine':<8} "
        + " ".join(f"{name:>9}" for name in CLASSIFICATIONS)
        + "  invariant"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        counts = result.counts()
        violations = result.restart_invariant_violations()
        verdict = f"VIOLATED({len(violations)})" if violations else "held"
        lines.append(
            f"{result.program:<14} {result.lang:<7} {result.machine:<8} "
            + " ".join(f"{counts[name]:>9}" for name in CLASSIFICATIONS)
            + f"  {verdict}"
        )
    return "\n".join(lines)


def campaign_json(results: list[CampaignResult], *, indent: int = 2) -> str:
    """Machine-readable report; deterministic (sorted keys, no clocks)."""
    payload = [result.to_json() for result in results]
    document = payload[0] if len(payload) == 1 else payload
    return json.dumps(document, indent=indent, sort_keys=True)
