"""Deterministic fault plans: seeded scenario generation + spec strings.

A :class:`FaultSpec` describes one injectable fault as a flat
``kind:key=value,...`` string, e.g.::

    bitflip:addr=3,bit=17       flip control-store bit 17 of word 3
    memfault:op=read,nth=2      force a pagefault on the 2nd memory read
    stuck:reg=R2,value=0        stuck-at-0 datapath register R2
    storm:period=7              raise an external interrupt every 7 cycles

Spec strings round-trip (``parse_fault_spec(spec.render()) == spec``),
so a campaign is reproducible from nothing but its seed and specs.

A :class:`FaultPlan` is a seed plus the list of specs drawn from a
:class:`FaultSpace` — the program-and-machine-shaped envelope of
sensible faults (control-store extent, word width, writable registers,
observed memory traffic).  Generation uses ``random.Random(seed)``
only, never wall-clock or global RNG state, so the same seed and space
always produce the same plan, on any platform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import FaultPlanError

#: Fault kinds the toolkit knows how to build injectors for.
#: ``kill`` is the chaos-testing kind: it SIGKILLs the *simulating
#: process* at the Nth microinstruction.  Never drawn by seeded plan
#: generation (``FaultSpace.kinds_available`` excludes it); it exists
#: for explicit specs that exercise crash-safety — the ``--jobs``
#: shard supervisor, the serve worker pool, CI chaos smoke.
FAULT_KINDS = ("bitflip", "memfault", "stuck", "storm", "kill")

#: Spec parameters that stay strings (everything else parses as int).
_STRING_PARAMS = frozenset({"reg", "op"})


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault, reproducible from its spec string."""

    kind: str
    params: tuple[tuple[str, str | int], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )

    def get(self, name: str, default=None):
        for key, value in self.params:
            if key == name:
                return value
        return default

    def require(self, name: str):
        value = self.get(name)
        if value is None:
            raise FaultPlanError(
                f"fault spec {self.render()!r} is missing parameter {name!r}"
            )
        return value

    def render(self) -> str:
        """The canonical ``kind:key=value,...`` spec string."""
        if not self.params:
            return self.kind
        body = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.kind}:{body}"

    def __str__(self) -> str:
        return self.render()


def spec(kind: str, **params: str | int) -> FaultSpec:
    """Terse FaultSpec constructor (params keep call order)."""
    return FaultSpec(kind, tuple(params.items()))


def parse_fault_spec(text: str) -> FaultSpec:
    """Inverse of :meth:`FaultSpec.render`."""
    kind, _, body = text.strip().partition(":")
    if not kind:
        raise FaultPlanError(f"empty fault spec {text!r}")
    params: list[tuple[str, str | int]] = []
    if body:
        for item in body.split(","):
            key, eq, value = item.partition("=")
            if not eq or not key or not value:
                raise FaultPlanError(
                    f"bad fault parameter {item!r} in {text!r}; "
                    f"expected key=value"
                )
            if key in _STRING_PARAMS:
                params.append((key, value))
            else:
                try:
                    params.append((key, int(value, 0)))
                except ValueError:
                    raise FaultPlanError(
                        f"fault parameter {key!r} in {text!r} must be an "
                        f"integer, got {value!r}"
                    ) from None
    return FaultSpec(kind, tuple(params))


@dataclass(frozen=True)
class FaultSpace:
    """The envelope scenarios are drawn from.

    Built from a compiled program and its fault-free golden run (see
    :func:`repro.faults.campaign.fault_space_for`), so generated
    faults always target state the program actually exercises.
    """

    n_words: int
    word_bits: int
    registers: tuple[str, ...] = ()
    register_bits: int = 16
    reads: int = 0
    writes: int = 0
    cycles: int = 0

    def kinds_available(self) -> tuple[str, ...]:
        kinds = ["bitflip"]
        if self.reads or self.writes:
            kinds.append("memfault")
        if self.registers:
            kinds.append("stuck")
        if self.cycles > 1:
            kinds.append("storm")
        return tuple(kinds)


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the scenarios it deterministically produced."""

    seed: int
    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def generate(cls, seed: int, space: FaultSpace, n: int) -> "FaultPlan":
        """Draw ``n`` scenarios from ``space`` with a seeded RNG."""
        if n < 0:
            raise FaultPlanError(f"scenario count must be >= 0, got {n}")
        if space.n_words <= 0 or space.word_bits <= 0:
            raise FaultPlanError(
                "fault space needs a non-empty program "
                f"(n_words={space.n_words}, word_bits={space.word_bits})"
            )
        rng = random.Random(seed)
        kinds = space.kinds_available()
        specs = tuple(_draw(rng, space, kinds) for _ in range(n))
        return cls(seed, specs)

    @classmethod
    def from_specs(cls, seed: int, texts: list[str]) -> "FaultPlan":
        """Rebuild a plan from rendered spec strings."""
        return cls(seed, tuple(parse_fault_spec(t) for t in texts))

    def render(self) -> list[str]:
        return [s.render() for s in self.specs]


def _draw(rng: random.Random, space: FaultSpace, kinds) -> FaultSpec:
    kind = rng.choice(kinds)
    if kind == "bitflip":
        return spec(
            "bitflip",
            addr=rng.randrange(space.n_words),
            bit=rng.randrange(space.word_bits),
        )
    if kind == "memfault":
        ops = []
        if space.reads:
            ops.append(("read", space.reads))
        if space.writes:
            ops.append(("write", space.writes))
        op, total = rng.choice(ops)
        return spec("memfault", op=op, nth=rng.randrange(1, total + 1))
    if kind == "stuck":
        return spec(
            "stuck",
            reg=rng.choice(space.registers),
            value=rng.choice((0, 1, (1 << space.register_bits) - 1)),
        )
    # storm: a period short enough to fire repeatedly within the run.
    period = rng.randrange(2, max(3, space.cycles // 2 + 1))
    return spec("storm", period=period)
