"""Fault injectors: adversarial hardware-fault models for the simulator.

Each injector plugs into the two hooks :class:`repro.sim.Simulator`
exposes (``on_instruction`` before execution, ``after_sequence`` after
the microsequencer advanced) plus an ``attach`` step that may wrap
parts of the machine state.  A detached simulator pays one
``is not None`` test per hook, mirroring the observability recorder's
zero-overhead contract (checked by ``bench_fault_overhead``).

Four fault models, one per classic microlevel failure mode:

* :class:`ControlStoreBitFlip` — a single-event upset in the writable
  control store.  The flip is applied to the *encoded* word; the bit's
  field is located in the machine's control-word format, the new field
  code is decoded, and the structured microinstruction is mutated to
  match (operand swap, micro-order change, immediate change, branch
  condition/target change).  Codes with no decoding raise an
  illegal-encoding :class:`~repro.errors.MicroTrap`, modelling a
  control-store parity trap; flips landing in fields the word does not
  drive are *latent* (architecturally masked).
* :class:`StuckAtRegister` — a datapath register stuck at a value;
  re-asserted at every microinstruction boundary.
* :class:`TransientMemoryFault` — a forced pagefault on the Nth main
  memory read or write, transient (gone on retry), exercising the
  §2.1.5 trap-and-restart path on demand.
* :class:`InterruptStorm` — an external interrupt raised every
  ``period`` cycles, stressing ``poll`` latency and service charges.

Every firing is appended to ``injector.fired`` and, when the simulator
carries a recording tracer, emitted as a span on the ``faults`` track
of the Chrome trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.asm.assembler import LoadedWord
from repro.errors import FaultPlanError, MicroTrap
from repro.mir.block import Branch
from repro.mir.operands import Imm, Reg
from repro.obs.events import PH_COMPLETE, TRACK_FAULTS, Event

#: Micro-order names (lowercased) with pure datapath semantics the
#: simulator can evaluate, by minimum source arity.  A bit flip that
#: retargets an order field may only substitute one of these; anything
#: else is treated as an illegal encoding (detected, not simulated).
_PURE_OPS_ARITY = {
    "add": 2, "sub": 2, "adc": 2, "and": 2, "or": 2, "xor": 2,
    "nand": 2, "nor": 2, "cmp": 2, "mul": 2,
    "inc": 1, "dec": 1, "not": 1, "neg": 1,
    "shl": 1, "shr": 1, "sar": 1, "rol": 1, "ror": 1,
    "mov": 1,
}


class FaultInjector:
    """Base injector: attaches to a simulator, hooks do nothing."""

    def __init__(self) -> None:
        #: Chronological record of every firing (dicts, JSON-safe).
        self.fired: list[dict] = []

    # -- lifecycle -----------------------------------------------------
    def attach(self, simulator) -> "FaultInjector":
        """Install this injector on a simulator (chainable)."""
        simulator.injector = self
        return self

    # -- simulator hooks ----------------------------------------------
    def on_instruction(self, simulator, loaded: LoadedWord) -> LoadedWord:
        """Called before each microinstruction executes; may mutate
        state, raise a :class:`MicroTrap`, or substitute the word."""
        return loaded

    def after_sequence(self, simulator, address: int, resident):
        """Called after the sequencer advanced; a non-None return
        overrides the next microprogram counter value."""
        return None

    # -- bookkeeping ---------------------------------------------------
    def record(self, simulator, name: str, **args) -> None:
        """Log a firing and mirror it onto the fault trace track."""
        cycle = simulator.state.cycles
        self.fired.append({"name": name, "cycle": cycle, **args})
        recorder = simulator.recorder
        if recorder is not None and recorder.tracer.enabled:
            recorder.tracer.emit(
                Event(name=name, cat="fault", ph=PH_COMPLETE, ts=cycle,
                      dur=1, track=TRACK_FAULTS, args=args)
            )


class CompositeInjector(FaultInjector):
    """Fans the simulator hooks out to several injectors.

    ``fired`` aggregates the members' records in hook order.
    """

    def __init__(self, members: list[FaultInjector]):
        super().__init__()
        self.members = list(members)

    def attach(self, simulator) -> "CompositeInjector":
        simulator.injector = self
        for member in self.members:
            member.attach(simulator)
        simulator.injector = self  # members' attach reset the hook
        return self

    def on_instruction(self, simulator, loaded: LoadedWord) -> LoadedWord:
        for member in self.members:
            loaded = member.on_instruction(simulator, loaded)
        return loaded

    def after_sequence(self, simulator, address: int, resident):
        override = None
        for member in self.members:
            result = member.after_sequence(simulator, address, resident)
            if result is not None:
                override = result
        return override

    @property  # type: ignore[override]
    def fired(self) -> list[dict]:
        records: list[dict] = list(self._own_fired)
        for member in self.members:
            records.extend(member.fired)
        return records

    @fired.setter
    def fired(self, value: list[dict]) -> None:
        self._own_fired = value


# ----------------------------------------------------------------------
class StuckAtRegister(FaultInjector):
    """A datapath register stuck at ``value`` from ``from_cycle`` on.

    The stuck value is re-asserted at every microinstruction boundary
    (the granularity at which the structured simulator can model a
    permanently-shorted latch input).
    """

    def __init__(self, register: str, value: int, from_cycle: int = 0):
        super().__init__()
        self.register = register
        self.value = value
        self.from_cycle = from_cycle
        self._announced = False

    def on_instruction(self, simulator, loaded: LoadedWord) -> LoadedWord:
        state = simulator.state
        if state.cycles >= self.from_cycle:
            state.poke_reg(self.register, self.value)
            if not self._announced:
                self._announced = True
                self.record(simulator, "fault.stuck",
                            register=self.register, value=self.value)
        return loaded


class TransientMemoryFault(FaultInjector):
    """Force a pagefault on the Nth main-memory access of ``op``.

    One-shot and transient: the retried access after the §2.1.5
    restart succeeds, so well-formed trap services converge.
    """

    def __init__(self, op: str = "read", nth: int = 1):
        super().__init__()
        if op not in ("read", "write"):
            raise FaultPlanError(f"memfault op must be read/write, got {op!r}")
        if nth < 1:
            raise FaultPlanError(f"memfault nth must be >= 1, got {nth}")
        self.op = op
        self.nth = nth
        self._seen = 0
        self._spent = False

    def attach(self, simulator) -> "TransientMemoryFault":
        simulator.injector = self
        simulator.state.memory = _FaultingMemory(
            simulator.state.memory, self, simulator
        )
        return self

    def _should_fire(self, op: str) -> bool:
        if self._spent or op != self.op:
            return False
        self._seen += 1
        if self._seen == self.nth:
            self._spent = True
            return True
        return False


class _FaultingMemory:
    """Proxy around :class:`~repro.sim.memory.MainMemory` that raises
    one injected pagefault, then becomes transparent."""

    def __init__(self, inner, fault: TransientMemoryFault, simulator):
        self._inner = inner
        self._fault = fault
        self._simulator = simulator

    def read(self, address: int) -> int:
        if self._fault._should_fire("read"):
            self._fault.record(self._simulator, "fault.memread",
                               address=address, nth=self._fault.nth)
            raise MicroTrap(
                "pagefault", f"injected transient fault (address {address})"
            )
        return self._inner.read(address)

    def write(self, address: int, value: int) -> None:
        if self._fault._should_fire("write"):
            self._fault.record(self._simulator, "fault.memwrite",
                               address=address, nth=self._fault.nth)
            raise MicroTrap(
                "pagefault", f"injected transient fault (address {address})"
            )
        self._inner.write(address, value)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class InterruptStorm(FaultInjector):
    """Raise an external interrupt every ``period`` cycles.

    Unlike the simulator's own ``interrupt_every`` device model, the
    storm is an adversarial injector: it can start mid-run and its
    firings land on the fault track for trace inspection.
    """

    def __init__(self, period: int, from_cycle: int = 0):
        super().__init__()
        if period < 1:
            raise FaultPlanError(f"storm period must be >= 1, got {period}")
        self.period = period
        self.from_cycle = from_cycle
        self._next = None

    def on_instruction(self, simulator, loaded: LoadedWord) -> LoadedWord:
        state = simulator.state
        if self._next is None:
            self._next = max(self.from_cycle, state.cycles) + self.period
        if state.cycles >= self._next:
            self._next = state.cycles + self.period
            if not state.interrupt_pending:
                state.interrupt_pending = True
                self.record(simulator, "fault.interrupt", period=self.period)
        return loaded


# ----------------------------------------------------------------------
@dataclass
class FlipEffect:
    """What a control-store bit flip does, architecturally.

    ``kind`` is one of ``latent`` (field not driven by the word, or
    the flipped code is indistinguishable in the structured model),
    ``operand`` (a register selector now picks another register),
    ``order`` (a function code now selects another micro-order),
    ``immediate`` (a literal/count changed), ``condition`` (a branch
    tests another flag), ``sequencer`` (the branch target address
    changed) or ``illegal`` (no valid decoding — executing the word
    traps).
    """

    kind: str
    fieldname: str
    old_code: int
    new_code: int
    detail: str = ""
    loaded: LoadedWord | None = None
    new_target: int | None = None


def compute_flip_effect(
    machine, loaded: LoadedWord, bit: int
) -> FlipEffect:
    """Decode the architectural effect of flipping ``bit`` of a word."""
    control = machine.control
    if not 0 <= bit < control.width:
        raise FaultPlanError(
            f"bit {bit} outside the {control.width}-bit control word"
        )
    fld = None
    offset = 0
    for candidate in control:
        start = control.offset(candidate.name)
        if start <= bit < start + candidate.width:
            fld, offset = candidate, start
            break
    assert fld is not None  # fields tile the word
    old_code = (loaded.word >> offset) & fld.mask
    new_code = old_code ^ (1 << (bit - offset))

    def effect(kind: str, detail: str = "", **extra) -> FlipEffect:
        return FlipEffect(kind, fld.name, old_code, new_code,
                          detail=detail, **extra)

    if fld.name not in loaded.settings:
        return effect("latent", "field not driven by this word")

    mutated_word = loaded.word ^ (1 << bit)
    instruction = loaded.instruction

    # Sequencer fields first: they are not owned by any placed op.
    if fld.name == "br_addr":
        return effect("sequencer", f"branch target -> {new_code:04d}",
                      new_target=new_code)
    if fld.name == "br_cond":
        decoded = fld.decode(new_code)
        terminator = instruction.terminator
        if isinstance(decoded, str) and isinstance(terminator, Branch):
            new_terminator = replace(terminator, cond=decoded)
            new_instruction = replace_instruction(
                instruction, terminator=new_terminator
            )
            return effect(
                "condition", f"branch condition -> {decoded}",
                loaded=_reword(loaded, new_instruction, fld.name,
                               new_code, mutated_word),
            )
        return effect("illegal", f"br_cond code {new_code} undecodable")
    if fld.name == "br_mode":
        return effect("illegal", f"br_mode code {new_code}")

    # Datapath fields: find the placed op that drives the field.
    for index, placed in enumerate(instruction.placed):
        settings = placed.settings(machine)
        if fld.name in settings:
            break
    else:
        return effect("latent", "field driven only by sequencing fixup")

    op = placed.op
    if fld.is_immediate:
        for src_index, src in enumerate(op.srcs):
            if isinstance(src, Imm) and (src.value & fld.mask) == old_code:
                new_srcs = tuple(
                    Imm(new_code) if i == src_index else s
                    for i, s in enumerate(op.srcs)
                )
                new_op = op.with_operands(op.dest, new_srcs)
                return effect(
                    "immediate", f"{op.op} literal {old_code} -> {new_code}",
                    loaded=_reword(loaded, _replace_op(
                        instruction, index, new_op, placed.spec
                    ), fld.name, new_code, mutated_word),
                )
        return effect("latent", "immediate not traceable to an operand")

    decoded = fld.decode(new_code)
    if not isinstance(decoded, str):
        return effect("illegal", f"{fld.name} code {new_code} undecodable")
    old_decoded = fld.decode(old_code)

    if decoded in machine.registers:
        # Register selector: retarget the matching operand.
        if op.dest is not None and op.dest.name == old_decoded:
            new_op = op.with_operands(Reg(decoded), op.srcs)
        else:
            for src_index, src in enumerate(op.srcs):
                if isinstance(src, Reg) and src.name == old_decoded:
                    new_srcs = tuple(
                        Reg(decoded) if i == src_index else s
                        for i, s in enumerate(op.srcs)
                    )
                    new_op = op.with_operands(op.dest, new_srcs)
                    break
            else:
                return effect("latent", "selector not traceable to operand")
        return effect(
            "operand", f"{op.op} {old_decoded} -> {decoded}",
            loaded=_reword(loaded, _replace_op(
                instruction, index, new_op, placed.spec
            ), fld.name, new_code, mutated_word),
        )

    # Micro-order change (e.g. alu_op ADD -> SUB).  Order fields
    # reserve code 0 / NOP for "unit not driven": flipping into it
    # silently drops the micro-order from the word.
    new_name = decoded.lower()
    if new_name == "nop":
        remaining = [
            p for position, p in enumerate(instruction.placed)
            if position != index
        ]
        from repro.compose.base import MicroInstruction

        dropped = MicroInstruction(
            placed=remaining, terminator=instruction.terminator
        )
        return effect(
            "order", f"{op.op} -> nop (micro-order dropped)",
            loaded=_reword(loaded, dropped, fld.name, new_code,
                           mutated_word),
        )
    arity = _PURE_OPS_ARITY.get(new_name)
    if arity is None or len(op.srcs) < arity or op.dest is None:
        return effect("illegal", f"{fld.name} -> {decoded} not executable")
    new_op = replace(op, op=new_name)
    return effect(
        "order", f"{op.op} -> {new_name}",
        loaded=_reword(loaded, _replace_op(
            instruction, index, new_op, placed.spec
        ), fld.name, new_code, mutated_word),
    )


def _replace_op(instruction, index: int, new_op, spec):
    from repro.compose.base import MicroInstruction, PlacedOp

    placed = list(instruction.placed)
    placed[index] = PlacedOp(new_op, spec)
    return MicroInstruction(placed=placed, terminator=instruction.terminator)


def replace_instruction(instruction, *, terminator):
    from repro.compose.base import MicroInstruction

    return MicroInstruction(
        placed=list(instruction.placed), terminator=terminator
    )


def _reword(
    loaded: LoadedWord, instruction, fieldname: str, new_code: int,
    mutated_word: int,
) -> LoadedWord:
    settings = dict(loaded.settings)
    settings[fieldname] = new_code
    return LoadedWord(loaded.address, instruction, settings, mutated_word)


class ProcessKill(FaultInjector):
    """Chaos injector: SIGKILL the simulating process mid-run.

    This models the failure the other injectors cannot — the *host*
    process dying under a scenario (segfault, OOM-kill) — and is the
    deterministic trigger behind the crash-safety tests of the
    ``--jobs`` shard supervisor and the serve worker pool.  At the
    ``nth`` executed microinstruction the process SIGKILLs itself:
    no exception, no cleanup, exactly like the real thing.

    Never drawn by seeded plan generation; only explicit
    ``kill:nth=N`` specs build it.  Attaching it in the parent
    process of a test suite would kill the suite, which is the
    point — use it inside sacrificial worker processes.
    """

    def __init__(self, nth: int = 1):
        super().__init__()
        if nth < 1:
            raise FaultPlanError(f"kill nth must be >= 1, got {nth}")
        self.nth = nth
        self._seen = 0

    def on_instruction(self, simulator, loaded: LoadedWord) -> LoadedWord:
        self._seen += 1
        if self._seen >= self.nth:
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        return loaded


class ControlStoreBitFlip(FaultInjector):
    """Flip one encoded control-store bit at an absolute address.

    The mutation is computed lazily on first fetch of the word (the
    machine's field layout is needed) and cached; from ``from_cycle``
    on, every fetch of the address sees the flipped word — the fault
    is persistent, as a genuine control-store upset would be.
    """

    def __init__(self, address: int, bit: int, from_cycle: int = 0):
        super().__init__()
        self.address = address
        self.bit = bit
        self.from_cycle = from_cycle
        self.effect: FlipEffect | None = None
        self._announced = False

    def _effect_for(self, simulator, loaded: LoadedWord) -> FlipEffect:
        if self.effect is None:
            self.effect = compute_flip_effect(
                simulator.machine, loaded, self.bit
            )
        return self.effect

    def on_instruction(self, simulator, loaded: LoadedWord) -> LoadedWord:
        state = simulator.state
        if state.upc != self.address or state.cycles < self.from_cycle:
            return loaded
        effect = self._effect_for(simulator, loaded)
        if not self._announced:
            self._announced = True
            self.record(simulator, "fault.bitflip", address=self.address,
                        bit=self.bit, field=effect.fieldname,
                        effect=effect.kind, detail=effect.detail)
        if effect.kind == "illegal":
            raise MicroTrap(
                "illegal-encoding",
                f"control word {self.address:04d} {effect.fieldname} "
                f"code {effect.new_code} ({effect.detail})",
            )
        if effect.loaded is not None:
            return effect.loaded
        return loaded

    def after_sequence(self, simulator, address: int, resident):
        if address != self.address or self.effect is None:
            return None
        if self.effect.kind != "sequencer":
            return None
        # Redirect only when the sequencer actually drove the encoded
        # target onto the µPC (a not-taken branch never reads br_addr).
        if simulator.state.upc != resident.base + self.effect.old_code:
            return None
        # A target outside the program is a wild branch; the following
        # fetch fails, which the campaign classifies as detected.
        return resident.base + (self.effect.new_target or 0)


# ----------------------------------------------------------------------
def build_injector(fault_spec) -> FaultInjector:
    """Instantiate the injector a :class:`~repro.faults.plan.FaultSpec`
    (or spec string) describes."""
    from repro.faults.plan import FaultSpec, parse_fault_spec

    if isinstance(fault_spec, str):
        fault_spec = parse_fault_spec(fault_spec)
    assert isinstance(fault_spec, FaultSpec)
    kind = fault_spec.kind
    if kind == "bitflip":
        return ControlStoreBitFlip(
            address=int(fault_spec.require("addr")),
            bit=int(fault_spec.require("bit")),
            from_cycle=int(fault_spec.get("cycle", 0)),
        )
    if kind == "memfault":
        return TransientMemoryFault(
            op=str(fault_spec.get("op", "read")),
            nth=int(fault_spec.get("nth", 1)),
        )
    if kind == "stuck":
        return StuckAtRegister(
            register=str(fault_spec.require("reg")),
            value=int(fault_spec.get("value", 0)),
            from_cycle=int(fault_spec.get("cycle", 0)),
        )
    if kind == "storm":
        return InterruptStorm(
            period=int(fault_spec.require("period")),
            from_cycle=int(fault_spec.get("cycle", 0)),
        )
    if kind == "kill":
        return ProcessKill(nth=int(fault_spec.get("nth", 1)))
    raise FaultPlanError(f"unknown fault kind {kind!r}")
