"""Content-addressed compile cache (survey substrate S17).

Campaigns, matrices and benchmarks compile the *same* program for the
*same* machine over and over — ``run_matrix`` once per cell,
fault-campaign workers once per shard, benchmark harnesses once per
repetition.  Compilation is pure: its output is fully determined by
the source text, the language, the machine description and the compile
options.  That makes it content-addressable, the same observation
ccache applies to C and the REC restoration applies to whole legacy
toolchains — key the result by what went *in* and never compile the
same thing twice.

Keys are SHA-256 digests over ``(source text, language,
machine fingerprint, canonicalised options)``.  The machine
fingerprint digests the *description* — register file, op table,
control-word format, unit timings — not the object identity, so two
independently built instances of the same machine (e.g. in different
worker processes) share cache entries, while a variant built with
different knobs (``macro_visible=...``) does not.

Two tiers:

* an in-memory LRU (:class:`CompileCache`), bounded by ``capacity``;
* an optional on-disk tier (``disk_dir=...``) holding pickled results,
  shared across processes and sessions.

Observability: every probe emits a ``cache.hit`` / ``cache.miss``
instant event on the supplied tracer and counts into
:attr:`CompileCache.stats`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.obs.tracer import NULL_TRACER

#: Bump when the cached result layout changes incompatibly, so stale
#: on-disk entries from older checkouts can never be unpickled into a
#: newer toolkit.  2: ``CompileResult`` moved to ``repro.pipeline``
#: and grew ``diagnostics``/``dumps``.
CACHE_FORMAT = 2


# ----------------------------------------------------------------------
# Machine fingerprinting
# ----------------------------------------------------------------------
def machine_fingerprint(machine) -> str:
    """Stable digest of a machine *description* (not identity).

    Covers everything compilation can observe: datapath geometry,
    the register file (including banking, windows, macro-visibility
    and read-only flags), functional-unit timing, the op table and
    the control-word format.  Notes and other report-only attributes
    are deliberately excluded.
    """
    files = machine.registers
    parts: list[str] = [
        machine.name,
        str(machine.word_size),
        str(machine.n_phases),
        str(int(machine.allows_phase_chaining)),
        str(machine.memory_latency),
        str(machine.control_store_size),
        str(machine.micro_stack_depth),
        str(machine.scratchpad_size),
        ",".join(machine.flags),
        str(int(machine.has_multiway_branch)),
        str(int(machine.vertical)),
        f"banks={files.n_banks};ptr={files.bank_pointer}",
    ]
    for register in files:
        parts.append(
            f"reg:{register.name}:{register.width}:"
            f"{','.join(sorted(register.classes))}:"
            f"{int(register.auto_increment)}{int(register.macro_visible)}"
            f"{int(register.readonly)}:{register.reset}:"
            f"{files.bank_of.get(register.name, -1)}"
        )
    for window, physical in sorted(files.windows.items()):
        parts.append(f"win:{window}:{','.join(physical)}")
    for name, unit in sorted(machine.units.items()):
        parts.append(f"unit:{name}:{unit.phase}:{unit.count}:{unit.latency}")
    for name, variants in sorted(machine.ops._variants.items()):
        for spec in variants:
            parts.append(
                f"op:{spec.key}:{spec.unit}:{spec.n_srcs}:"
                f"{int(spec.has_dest)}:{spec.latency}:"
                f"{spec.settings!r}:{spec.imm_srcs!r}"
            )
    for fld in machine.control._fields.values():
        parts.append(
            f"fld:{fld.name}:{fld.width}:{int(fld.is_immediate)}:"
            f"{fld.nop_code}:{sorted(fld.encodings.items())!r}"
        )
    digest = hashlib.sha256("\n".join(parts).encode()).hexdigest()
    return digest[:16]


def canonical_value(value) -> str:
    """Render one value insertion-order-independently.

    ``repr()`` of a dict (or of a list holding one) bakes insertion
    order into the cache key, so two equal option dicts built in
    different orders silently keyed different entries.  Canonicalize
    recursively: mappings sort by key at every level, sequences keep
    their order but canonicalize elements, sets sort.

    Public because every content identity in the toolkit wants the
    same property: compile keys here, and the serve layer's in-flight
    ``dedup_key`` / ``batch_group_key`` over request payloads.
    """
    if isinstance(value, dict):
        items = ",".join(
            f"{k!r}:{canonical_value(v)}" for k, v in sorted(value.items())
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        rendered = ",".join(canonical_value(v) for v in value)
        return ("[" if isinstance(value, list) else "(") + rendered + \
            ("]" if isinstance(value, list) else ")")
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(canonical_value(v) for v in value)) + "}"
    return repr(value)


#: Backwards-compatible private alias (pre-S24 internal name).
_canonical_value = canonical_value


def _canonical_options(options: dict | None) -> str:
    if not options:
        return ""
    return ";".join(
        f"{k}={_canonical_value(options[k])}" for k in sorted(options)
    )


def compile_key(
    source: str, lang: str, machine, options: dict | None = None
) -> str:
    """The content address of one compilation."""
    blob = "\x1f".join(
        (
            f"v{CACHE_FORMAT}",
            lang,
            machine_fingerprint(machine),
            _canonical_options(options),
            source,
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
def write_atomic(path: Path, result) -> None:
    """Crash-safe disk write: serialize, temp file, ``os.replace``.

    Shared by the compile cache and the trace JIT's disk tier
    (:mod:`repro.sim.trace`).  A ``.pkl`` either exists complete or
    not at all — a worker SIGKILLed mid-write (the serve pool's
    normal chaos diet) can never leave a truncated entry for
    ``cache.corrupt`` to clean up later.  Three guarantees stacked:

    * pickling happens fully in memory first, so a serialization
      failure touches no file at all;
    * the temp file is uniquely named (``mkstemp``), so two
      concurrent writers of one key never interleave into the
      same buffer — last ``os.replace`` wins whole;
    * the payload is flushed and fsynced before the rename, so a
      crash between write and replace leaves only a stray temp
      file (swept by the next writer), never a partial target.

    The sweep can race a *live* concurrent writer of the same key
    and unlink its temp mid-write; because the cache is
    content-addressed, both writers carry equivalent payloads, so
    the loser just yields (its ``os.replace`` finds no source and
    the winner's complete entry lands instead).
    """
    blob = pickle.dumps(result)
    for stale in path.parent.glob(f".{path.stem[:16]}*.tmp"):
        try:
            stale.unlink()
        except OSError:
            pass  # another writer swept it first
    descriptor, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.stem[:16]}",
        suffix=".tmp",
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.replace(tmp_name, path)
        except FileNotFoundError:
            return  # swept by a concurrent writer of the same key
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Probe counters for one :class:`CompileCache`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    #: On-disk entries that failed to unpickle and were evicted.
    corrupt: int = 0

    def probes(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        probes = self.probes()
        return self.hits / probes if probes else 0.0

    def to_json(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate(), 4),
        }


@dataclass
class CompileCache:
    """Bounded LRU of compile results with an optional disk tier.

    Use through the front ends' ``cache=`` parameter::

        cache = CompileCache()
        result = compile_yalll(source, machine, cache=cache)   # miss
        result = compile_yalll(source, machine, cache=cache)   # hit

    or directly via :meth:`get_or_compile` for custom build steps.
    Hits return the *same* result object — callers must treat compile
    results as immutable (they already do: the simulator copies what
    it mutates).
    """

    capacity: int = 256
    disk_dir: str | Path | None = None
    tracer: object = NULL_TRACER
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    def key(
        self, source: str, lang: str, machine, options: dict | None = None
    ) -> str:
        return compile_key(source, lang, machine, options)

    def _disk_path(self, key: str) -> Path | None:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{key}.pkl"

    def get(self, key: str, tracer=None):
        """Memory tier, then disk tier; None on a full miss.

        A corrupt or stale on-disk entry (truncated pickle, an older
        ``CACHE_FORMAT``'s object layout, …) is a miss — and the bad
        file is *unlinked* so every later probe of the same key does
        not re-read and re-fail on it.  Evictions of this kind count
        into :attr:`CacheStats.corrupt` and emit a ``cache.corrupt``
        instant event.
        """
        tracer = self.tracer if tracer is None else tracer
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            return entry
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                with path.open("rb") as handle:
                    entry = pickle.load(handle)
            except Exception as error:
                self.stats.corrupt += 1
                try:
                    path.unlink()
                except OSError:
                    pass  # a concurrent reader may have evicted it first
                if tracer.enabled:
                    tracer.instant(
                        "cache.corrupt", cat="cache",
                        key=key[:12], error=type(error).__name__,
                    )
                return None
            self.stats.disk_hits += 1
            self._remember(key, entry)
            return entry
        return None

    def put(self, key: str, result) -> None:
        self._remember(key, result)
        path = self._disk_path(key)
        if path is not None:
            self._write_atomic(path, result)

    #: Back-compat alias — the crash-atomic writer now lives at module
    #: level so the trace JIT's disk tier can share it.
    _write_atomic = staticmethod(write_atomic)

    def _remember(self, key: str, result) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop the memory tier (the disk tier is left intact)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    def get_or_compile(
        self,
        source: str,
        lang: str,
        machine,
        options: dict | None,
        build: Callable[[], object],
        tracer=None,
    ):
        """The front-end entry point: probe, else ``build()`` and store."""
        tracer = self.tracer if tracer is None else tracer
        key = self.key(source, lang, machine, options)
        result = self.get(key, tracer=tracer)
        if result is not None:
            self.stats.hits += 1
            if tracer.enabled:
                tracer.instant(
                    "cache.hit", cat="cache",
                    lang=lang, machine=machine.name, key=key[:12],
                )
            return result
        self.stats.misses += 1
        if tracer.enabled:
            tracer.instant(
                "cache.miss", cat="cache",
                lang=lang, machine=machine.name, key=key[:12],
            )
        result = build()
        self.put(key, result)
        return result
