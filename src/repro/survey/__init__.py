"""The survey as data (substrate S13): language records and matrix."""

from repro.survey.languages import (
    LANGUAGES,
    Goal,
    Implementation,
    LanguageRecord,
    ParallelismModel,
    Primitives,
    VariableModel,
    by_name,
    survey_counts,
)
from repro.survey.matrix import render_conclusions, render_matrix

__all__ = [
    "Goal",
    "Implementation",
    "LANGUAGES",
    "LanguageRecord",
    "ParallelismModel",
    "Primitives",
    "VariableModel",
    "by_name",
    "render_conclusions",
    "render_matrix",
    "survey_counts",
]
