"""The survey's ten languages as machine-readable records.

Every row of the comparison matrix (experiment E12) and every count the
survey's conclusions quote ("eight allow complete sequential
specification", "only two or three allow … symbolic variables", "no
language allows the passing of parameters") is derived from these
records rather than hard-coded — the survey itself becomes a generated
artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Goal(Enum):
    """§2.1.1's two purposes of a high level microlanguage."""

    CONVENIENCE = "relieve programmer of low-level detail"
    CORRECTNESS = "reduce the chance of errors"
    BOTH = "both, convenience-leaning"


class Primitives(Enum):
    """§2.1.2's spectrum of primitive operations."""

    FIXED_SET = "fixed set of language operators"
    EXTENSIBLE = "small set plus user-declared operators"
    MACHINE_SCHEMA = "elementary statements from the machine (schema)"
    MACHINE_SPECIFIC = "exactly the target machine's microoperations"
    LOW_LEVEL_COMMON = "commonly available microinstructions"


class VariableModel(Enum):
    """§2.1.3: are variables machine registers?"""

    REGISTERS = "variables are (bound to) machine registers"
    SYMBOLIC = "symbolic variables, compiler allocates"
    MOSTLY_SYMBOLIC = "symbolic except dedicated registers (mar/mbr)"


class ParallelismModel(Enum):
    """§2.1.4: implicit or explicit parallelism?"""

    IMPLICIT = "sequential source, compiler composes"
    EXPLICIT = "programmer composes microinstructions"


class Implementation(Enum):
    """§2.1.8: implementation status as the survey reports it."""

    FULL = "compiler completed"
    PARTIAL = "partially implemented"
    TWO_MACHINES = "implemented on two machines"
    NONE = "not implemented"


@dataclass(frozen=True)
class LanguageRecord:
    """One surveyed language along the eight design issues."""

    name: str
    year: int
    reference: str
    section: str
    goal: Goal
    primitives: Primitives
    variables: VariableModel
    parallelism: ParallelismModel
    handles_interrupts: bool
    control_structure: str
    data_structuring: str
    implementation: Implementation
    verification: bool = False
    parameter_passing: bool = False
    in_toolkit: bool = False
    notes: str = ""


#: The ten languages, in the survey's order of treatment.
LANGUAGES: tuple[LanguageRecord, ...] = (
    LanguageRecord(
        name="SIMPL",
        year=1974,
        reference="Ramamoorthy & Tsuchiya [18]",
        section="2.2.1",
        goal=Goal.CONVENIENCE,
        primitives=Primitives.FIXED_SET,
        variables=VariableModel.REGISTERS,
        parallelism=ParallelismModel.IMPLICIT,
        handles_interrupts=False,
        control_structure="ALGOL-like; if/while/for/case; no goto",
        data_structuring="none (integers only)",
        implementation=Implementation.FULL,
        in_toolkit=True,
        notes="single identity principle; first compiler to horizontal code",
    ),
    LanguageRecord(
        name="EMPL",
        year=1976,
        reference="DeWitt [8]",
        section="2.2.2",
        goal=Goal.BOTH,
        primitives=Primitives.EXTENSIBLE,
        variables=VariableModel.SYMBOLIC,
        parallelism=ParallelismModel.IMPLICIT,
        handles_interrupts=False,
        control_structure="PL/I-like; if/while/goto; no case",
        data_structuring="extension types (SIMULA-class-like)",
        implementation=Implementation.PARTIAL,
        in_toolkit=True,
        notes="MICROOP escape keeps machine independence with efficiency",
    ),
    LanguageRecord(
        name="S*",
        year=1978,
        reference="Dasgupta [4]",
        section="2.2.3",
        goal=Goal.CORRECTNESS,
        primitives=Primitives.MACHINE_SCHEMA,
        variables=VariableModel.REGISTERS,
        parallelism=ParallelismModel.EXPLICIT,
        handles_interrupts=False,
        control_structure="Pascal-like; cascaded if; while/repeat; cobegin/cocycle/dur/region",
        data_structuring="seq/array/tuple/stack over bits",
        implementation=Implementation.NONE,
        verification=True,
        in_toolkit=True,
        notes="language schema instantiated per machine as S(M)",
    ),
    LanguageRecord(
        name="YALLL",
        year=1979,
        reference="Patterson, Lew & Tuck [16]",
        section="2.2.4",
        goal=Goal.CONVENIENCE,
        primitives=Primitives.LOW_LEVEL_COMMON,
        variables=VariableModel.MOSTLY_SYMBOLIC,
        parallelism=ParallelismModel.IMPLICIT,
        handles_interrupts=False,
        control_structure="assembly-like; cond/uncond jump; multiway mask branch; call/ret/exit",
        data_structuring="none; five constant forms incl. masks",
        implementation=Implementation.TWO_MACHINES,
        in_toolkit=True,
        notes="HP300 back end far outperformed the undocumented VAX-11",
    ),
    LanguageRecord(
        name="MPL",
        year=1971,
        reference="Eckhouse [10]",
        section="2.2.5",
        goal=Goal.CONVENIENCE,
        primitives=Primitives.FIXED_SET,
        variables=VariableModel.REGISTERS,
        parallelism=ParallelismModel.IMPLICIT,
        handles_interrupts=False,
        control_structure="SIMPL-like",
        data_structuring="1-D arrays; virtual registers by concatenation",
        implementation=Implementation.PARTIAL,
        in_toolkit=True,
        notes="earliest effort; targeted a vertical machine",
    ),
    LanguageRecord(
        name="Strum",
        year=1976,
        reference="Patterson [17]",
        section="2.2.5",
        goal=Goal.CORRECTNESS,
        primitives=Primitives.MACHINE_SPECIFIC,
        variables=VariableModel.REGISTERS,
        parallelism=ParallelismModel.IMPLICIT,
        handles_interrupts=False,
        control_structure="structured, proof-carrying",
        data_structuring="Burroughs D-machine types",
        implementation=Implementation.FULL,
        verification=True,
        notes="assertions checked by an automatic verifier; non-optimizing compiler",
    ),
    LanguageRecord(
        name="MPGL",
        year=1977,
        reference="Baba [1]",
        section="2.2.5",
        goal=Goal.CONVENIENCE,
        primitives=Primitives.MACHINE_SPECIFIC,
        variables=VariableModel.REGISTERS,
        parallelism=ParallelismModel.IMPLICIT,
        handles_interrupts=False,
        control_structure="poor structuring; explicit control-store placement",
        data_structuring="machine specification is part of the program",
        implementation=Implementation.FULL,
        notes="code size within 15% of hand-written microprograms",
    ),
    LanguageRecord(
        name="Malik-Lewis",
        year=1978,
        reference="Malik & Lewis [14]",
        section="2.2.5",
        goal=Goal.CONVENIENCE,
        primitives=Primitives.EXTENSIBLE,
        variables=VariableModel.SYMBOLIC,
        parallelism=ParallelismModel.IMPLICIT,
        handles_interrupts=False,
        control_structure="emulator-oriented",
        data_structuring="declarable registers and stacks of the emulated machine",
        implementation=Implementation.NONE,
        notes="design over implementation; efficiency doubtful",
    ),
    LanguageRecord(
        name="CHAMIL",
        year=1980,
        reference="Weidner [23]",
        section="2.2.5",
        goal=Goal.BOTH,
        primitives=Primitives.MACHINE_SPECIFIC,
        variables=VariableModel.REGISTERS,
        parallelism=ParallelismModel.EXPLICIT,
        handles_interrupts=False,
        control_structure="Pascal-based, adequate",
        data_structuring="adequate (Pascal-based)",
        implementation=Implementation.FULL,
        notes="datapath abstraction: reg_a := reg_b legal if a path exists",
    ),
    LanguageRecord(
        name="PL/MP",
        year=1978,
        reference="Tan [20], Kim & Tan [12] (IBM)",
        section="2.2.5",
        goal=Goal.CONVENIENCE,
        primitives=Primitives.FIXED_SET,
        variables=VariableModel.SYMBOLIC,
        parallelism=ParallelismModel.IMPLICIT,
        handles_interrupts=False,
        control_structure="PL/I subset",
        data_structuring="PL/I subset",
        implementation=Implementation.PARTIAL,
        notes="register assignment algorithms published; little else known",
    ),
)


def by_name(name: str) -> LanguageRecord:
    """Look a surveyed language up by name (case-insensitive)."""
    for record in LANGUAGES:
        if record.name.lower() == name.lower():
            return record
    raise KeyError(name)


def survey_counts() -> dict[str, int]:
    """The quantitative claims of the survey's conclusions (§3)."""
    return {
        "languages": len(LANGUAGES),
        "sequential_specification": sum(
            1 for r in LANGUAGES if r.parallelism is ParallelismModel.IMPLICIT
        ),
        "explicit_composition": sum(
            1 for r in LANGUAGES if r.parallelism is ParallelismModel.EXPLICIT
        ),
        "symbolic_variables": sum(
            1 for r in LANGUAGES
            if r.variables in (VariableModel.SYMBOLIC,
                               VariableModel.MOSTLY_SYMBOLIC)
        ),
        "parameter_passing": sum(1 for r in LANGUAGES if r.parameter_passing),
        "interrupt_handling": sum(1 for r in LANGUAGES if r.handles_interrupts),
        "with_verification": sum(1 for r in LANGUAGES if r.verification),
        "implemented_in_toolkit": sum(1 for r in LANGUAGES if r.in_toolkit),
    }
