"""Renders the survey's language × design-issue comparison matrix."""

from __future__ import annotations

from repro.survey.languages import LANGUAGES, LanguageRecord, survey_counts

#: (column header, extractor) pairs for the matrix.
_COLUMNS = [
    ("Language", lambda r: r.name),
    ("Year", lambda r: str(r.year)),
    ("Goal", lambda r: r.goal.name.lower()),
    ("Primitives", lambda r: r.primitives.name.lower().replace("_", "-")),
    ("Variables", lambda r: r.variables.name.lower().replace("_", "-")),
    ("Parallelism", lambda r: r.parallelism.name.lower()),
    ("Interrupts", lambda r: "yes" if r.handles_interrupts else "no"),
    ("Verification", lambda r: "yes" if r.verification else "no"),
    ("Implementation", lambda r: r.implementation.name.lower().replace("_", " ")),
    ("In toolkit", lambda r: "yes" if r.in_toolkit else "no"),
]


def render_matrix(records: tuple[LanguageRecord, ...] = LANGUAGES) -> str:
    """The comparison matrix as an aligned text table."""
    headers = [name for name, _ in _COLUMNS]
    rows = [[extract(record) for _, extract in _COLUMNS] for record in records]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out = [line(headers), line(["-" * width for width in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def render_conclusions() -> str:
    """The survey's §3 counts, regenerated from the records."""
    counts = survey_counts()
    return "\n".join(
        [
            f"{counts['languages']} languages surveyed",
            f"{counts['sequential_specification']} allow complete sequential "
            f"specification; {counts['explicit_composition']} leave "
            f"composition to the programmer",
            f"{counts['symbolic_variables']} allow symbolic variables "
            f"instead of physical registers",
            f"{counts['parameter_passing']} allow passing parameters to "
            f"subroutines",
            f"{counts['interrupt_handling']} address interrupt/trap handling",
            f"{counts['with_verification']} integrate program verification",
            f"{counts['implemented_in_toolkit']} fully implemented in this "
            f"toolkit (SIMPL, EMPL, S*, YALLL, MPL)",
        ]
    )
