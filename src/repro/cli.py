"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile`` — compile a source file for a machine, print the
  control-store listing and statistics.
* ``run`` — compile and execute, with register/memory initialization
  and final-state reporting.
* ``machines`` — describe the shipped machine descriptions.
* ``survey`` — print the survey's language comparison matrix.
* ``verify`` — run the verification subsystem over an S* program.
* ``faultsim`` — compile and simulate under explicitly chosen
  injected faults (``--fault bitflip:addr=3,bit=17`` …).
* ``campaign`` — run a seeded fault-injection campaign across one or
  more machines and classify every outcome (see ``repro.faults``).
* ``profile`` — run a program under the profile recorder (or replay
  a saved profile JSON) and print the hot-path analysis: ranked hot
  traces, loop nesting and an annotated disassembly heat report;
  ``--flamegraph``/``--prometheus`` export collapsed stacks and the
  Prometheus text format.
* ``languages`` — list every registered language and machine with
  its pipeline stages and capabilities (see ``repro.registry``).
* ``serve`` — the long-running batch compile-and-run service
  (``repro.serve``): POST ``/compile`` / ``/run`` / ``/campaign``,
  GET ``/healthz`` / ``/metrics``, with admission control, deadline
  propagation and a crash-safe worker pool.

``compile`` and ``run`` take ``--trace FILE`` (Chrome trace-event
JSON, or JSON-lines when the file ends in ``.jsonl``) and ``--stats``
(per-stage compile-time breakdown; for ``run`` also the simulator
hot-spot report).  ``compile --dump-after STAGE`` prints the program
state after any pipeline stage (or ``all`` of them).

Language and machine dispatch resolves through :mod:`repro.registry`:
registering a new front end or machine description there is all it
takes to appear in every command here.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.asm.loader import ControlStore
from repro.errors import ReproError, SimulationLimitError
from repro.lang.sstar import parse_sstar, verify_sstar
from repro.obs import (
    NULL_TRACER,
    TraceRecorder,
    Tracer,
    render_compile_report,
    render_hotspots,
    write_trace,
)
from repro.registry import (
    build_machine as get_machine,
)
from repro.registry import (
    get_language,
    get_machine_spec,
    language_names,
    machine_names,
)
from repro.sim.simulator import Simulator


def _parse_assignments(pairs: list[str]) -> dict[str, int]:
    values: dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not value:
            raise ReproError(f"bad assignment {pair!r}; expected name=value")
        values[name] = int(value, 0)
    return values


def _tracer_for(args) -> Tracer | None:
    """A recording tracer when --trace/--stats ask for one, else null."""
    if getattr(args, "trace", None) or getattr(args, "stats", False):
        return Tracer()
    return NULL_TRACER


def _write_trace(events, path) -> None:
    try:
        write_trace(events, path)
    except OSError as error:
        raise ReproError(f"cannot write trace {path!r}: {error}") from error
    print(f"trace written to {path}")


def _compile(args, tracer=NULL_TRACER) -> tuple:
    source = Path(args.file).read_text()
    machine = get_machine(args.machine)
    extra = {}
    if getattr(args, "restart_safe", False):
        extra["restart_safe"] = True
    if getattr(args, "dump_after", None):
        extra["dump_after"] = args.dump_after
    result = get_language(args.lang).compile(
        source, machine, tracer=tracer, **extra
    )
    return machine, result


def cmd_compile(args) -> int:
    tracer = _tracer_for(args)
    machine, result = _compile(args, tracer)
    for stage, text in result.dumps.items():
        print(f"--- after {stage} ---")
        print(text)
        print()
    print(result.loaded.listing(machine))
    print()
    print(f"{len(result.loaded)} control words "
          f"({len(result.loaded) * machine.control.width} bits), "
          f"{result.composed.n_ops()} micro-operations, "
          f"compaction {result.composed.compaction_ratio():.2f} ops/word")
    if result.legalize_stats.expansions:
        print(f"legalization: {result.legalize_stats.expansions}")
    if result.allocation.mapping:
        print(f"allocation: {result.allocation.mapping}"
              + (f", spilled {result.allocation.spilled_slots}"
                 if result.allocation.spilled_slots else ""))
    if args.stats:
        print()
        print(render_compile_report(tracer.events))
    if args.trace:
        _write_trace(tracer.events, args.trace)
    return 0


def cmd_run(args) -> int:
    tracer = _tracer_for(args)
    machine, result = _compile(args, tracer)
    store = ControlStore(machine)
    store.load(result.loaded)
    recorder = TraceRecorder(tracer) if tracer.enabled else None
    simulator = Simulator(machine, store, recorder=recorder,
                          engine=args.engine,
                          deadline_s=args.deadline_s)
    mapping = result.allocation.mapping
    for name, value in _parse_assignments(args.set or []).items():
        simulator.state.write_reg(mapping.get(name, name), value)
    for address, value in _parse_assignments(args.mem or []).items():
        simulator.state.memory.load_words(int(address, 0), [value])
    try:
        outcome = simulator.run(result.loaded.name,
                                max_cycles=args.max_cycles)
    except SimulationLimitError as error:
        # The structured exit path: a typed budget overrun is not a
        # toolkit failure (exit 2), it is a bounded run — report which
        # budget tripped and exit 3 so scripts can branch on it.
        print(f"simulation limit: kind={error.kind} "
              f"limit={error.limit}", file=sys.stderr)
        print(f"  {error}", file=sys.stderr)
        return 3
    print(outcome)
    if outcome.exit_value is not None:
        print(f"exit value: {outcome.exit_value} ({outcome.exit_value:#x})")
    if args.show:
        for name in args.show:
            register = mapping.get(name, name)
            print(f"{name} = {simulator.state.read_reg(register)}")
    if args.stats:
        print()
        print(render_compile_report(tracer.events))
        print()
        print(render_hotspots(outcome.profile))
    if args.trace:
        _write_trace(tracer.events, args.trace)
    return 0


def cmd_machines(args) -> int:
    for name in machine_names():
        machine = get_machine(name)
        print(machine.summary())
        if args.verbose:
            print(machine.control.describe())
            print()
    return 0


def cmd_languages(_args) -> int:
    print("languages:")
    for name in language_names():
        spec = get_language(name)
        print(f"  {name:6s} {spec.title} (survey §{spec.section})")
        print(f"         stages: {' -> '.join(spec.stage_names())}")
        print(f"         default composer: {spec.default_composer}")
        print(f"         capabilities: "
              f"{', '.join(spec.capabilities) or '(none)'}")
    print()
    print("machines:")
    for name in machine_names():
        spec = get_machine_spec(name)
        capabilities = ", ".join(spec.capabilities)
        suffix = f" [{capabilities}]" if capabilities else ""
        print(f"  {name:8s} {spec.organisation:10s} "
              f"{spec.description}{suffix}")
    return 0


def cmd_survey(_args) -> int:
    from repro.survey import render_conclusions, render_matrix

    print(render_matrix())
    print()
    print(render_conclusions())
    return 0


def cmd_verify(args) -> int:
    machine = get_machine(args.machine)
    program = parse_sstar(Path(args.file).read_text())
    report = verify_sstar(program, machine)
    print(report)
    return 0 if report.passed else 1


def cmd_faultsim(args) -> int:
    from repro.faults import FaultPlan, campaign_json, render_campaign
    from repro.faults.campaign import run_campaign_loaded

    tracer = _tracer_for(args)
    machine, result = _compile(args, tracer)
    plan = FaultPlan.from_specs(args.seed, args.fault)
    campaign = run_campaign_loaded(
        result.loaded, machine,
        lang=args.lang, seed=args.seed, plan=plan,
        registers=_parse_assignments(args.set or []),
        memory={
            int(a, 0): v
            for a, v in _parse_assignments(args.mem or []).items()
        },
        mapping=result.allocation.mapping,
        restart_hazards=result.restart_hazards,
        tracer=tracer,
        engine=args.engine,
        deadline_s=args.deadline_s,
    )
    if args.json:
        print(campaign_json([campaign]))
    else:
        print(render_campaign(campaign))
    if args.stats:
        print()
        print(render_compile_report(tracer.events))
    if args.trace:
        _write_trace(tracer.events, args.trace)
    failures = campaign.counts()["sdc"] + campaign.counts()["hang"]
    return 1 if failures else 0


def cmd_campaign(args) -> int:
    from repro.faults import campaign_json, render_campaign, render_matrix
    from repro.faults.campaign import run_campaign

    tracer = _tracer_for(args)
    source = Path(args.file).read_text()
    registers = _parse_assignments(args.set or [])
    memory = {
        int(a, 0): v for a, v in _parse_assignments(args.mem or []).items()
    }
    cache = None
    if args.cache_dir:
        from repro.cache import CompileCache

        cache = CompileCache(disk_dir=args.cache_dir)
    results = [
        run_campaign(
            source, args.lang, get_machine(name),
            n=args.n, seed=args.seed, restart_safe=args.restart_safe,
            registers=registers, memory=memory, tracer=tracer,
            jobs=args.jobs, engine=args.engine, cache=cache,
            collect_metrics=args.metrics, batch=args.batch,
        )
        for name in (args.machine or ["HM1"])
    ]
    if args.json:
        print(campaign_json(results))
    elif len(results) == 1:
        print(render_campaign(results[0], scenarios=args.verbose))
    else:
        print(render_matrix(results))
        if args.verbose:
            for campaign in results:
                print()
                print(render_campaign(campaign))
    if args.stats:
        print()
        print(render_compile_report(tracer.events))
    if args.trace:
        _write_trace(tracer.events, args.trace)
    violations = sum(
        len(campaign.restart_invariant_violations()) for campaign in results
    )
    return 1 if violations else 0


def cmd_profile(args) -> int:
    from repro.obs import (
        SimProfile,
        analyze_profile,
        dump_flamegraph,
        render_heat,
        render_hot_traces,
        to_prometheus,
    )

    # Cache counters exist only on the live-run path: a replayed
    # profile carries none, which keeps --replay output byte-identical
    # to what the original run saved (CI diffs exactly that).
    plan_cache = trace_cache = None
    if args.replay:
        try:
            payload = json.loads(Path(args.replay).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ReproError(
                f"cannot replay profile {args.replay!r}: {error}"
            ) from error
        profile = SimProfile.from_json(payload)
    else:
        if not args.file:
            raise ReproError(
                "profile: give a source FILE to run, or --replay "
                "PROFILE.json to analyze a saved profile"
            )
        if not args.lang:
            raise ReproError("profile: --lang is required with a FILE")
        machine, result = _compile(args)
        store = ControlStore(machine)
        store.load(result.loaded)
        recorder = TraceRecorder(NULL_TRACER)
        simulator = Simulator(machine, store, recorder=recorder,
                              engine=args.engine)
        mapping = result.allocation.mapping
        for name, value in _parse_assignments(args.set or []).items():
            simulator.state.write_reg(mapping.get(name, name), value)
        for address, value in _parse_assignments(args.mem or []).items():
            simulator.state.memory.load_words(int(address, 0), [value])
        run = simulator.run(result.loaded.name, max_cycles=args.max_cycles)
        plan_cache, trace_cache = run.plan_cache, run.trace_cache
        profile = recorder.profile
    analysis = analyze_profile(profile)
    if args.save:
        Path(args.save).write_text(
            json.dumps(profile.to_json(), indent=2, sort_keys=True) + "\n"
        )
        print(f"profile written to {args.save}")
    if args.flamegraph:
        dump_flamegraph(analysis, args.flamegraph)
        print(f"flamegraph written to {args.flamegraph}")
    if args.prometheus:
        Path(args.prometheus).write_text(to_prometheus(
            profile, plan_cache=plan_cache, trace_cache=trace_cache,
        ))
        print(f"prometheus metrics written to {args.prometheus}")
    if args.json:
        payload = analysis.to_json()
        if plan_cache is not None:
            payload["plan_cache"] = plan_cache
        if trace_cache is not None:
            payload["trace_cache"] = trace_cache
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_hot_traces(analysis, top=args.top, loops=args.loops))
        print()
        print(render_heat(analysis))
        for label, counters in (
            ("plan cache", plan_cache), ("trace cache", trace_cache),
        ):
            if counters:
                tally = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(counters.items())
                )
                print(f"{label}: {tally}")
    return 0


def cmd_difftest(args) -> int:
    from repro.difftest import run_difftest, self_check

    tracer = _tracer_for(args)
    if args.self_check:
        report = self_check(
            seed=args.seed, budget=min(args.budget, 10), tracer=tracer,
        )
        print("self-check passed: planted engine, trace-stitcher and "
              f"batch-lane bugs found ({len(report.divergences)} "
              "divergence(s))")
        return 0
    report = run_difftest(
        seed=args.seed,
        budget=args.budget,
        langs=tuple(args.langs) if args.langs else None,
        machines=tuple(args.machines),
        axes=tuple(args.axes),
        corpus_dir=args.corpus_dir,
        reduce=not args.no_reduce,
        size=args.size,
        tracer=tracer,
        batch=args.batch,
    )
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.stats:
        print()
        print(render_compile_report(tracer.events))
    if args.trace:
        _write_trace(tracer.events, args.trace)
    return 0 if report.clean else 1


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve import ReproService, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        class_limits={
            "compile": args.limit_compile,
            "run": args.limit_run,
            "campaign": args.limit_campaign,
        },
        default_deadline_s=args.default_deadline_s,
        max_deadline_s=args.max_deadline_s,
        seed=args.seed,
        breaker_strikes=args.breaker_strikes,
        breaker_cooldown_s=args.breaker_cooldown_s,
        cache_dir=args.cache_dir,
        drain_timeout_s=args.drain_timeout_s,
        enable_chaos=args.enable_chaos,
        batch_window_ms=args.batch_window_ms,
        batch_max_lanes=args.batch_max_lanes,
    )

    async def main() -> None:
        service = ReproService(config)
        await service.start()
        print(f"repro serve listening on "
              f"http://{config.host}:{service.port}  "
              f"(workers={config.workers}, "
              f"limits={config.class_limits}); SIGTERM drains",
              flush=True)
        loop = asyncio.get_running_loop()
        import signal as signal_module

        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(service.shutdown()),
                )
            except (NotImplementedError, RuntimeError):
                pass
        await service._stopped.wait()
        print("repro serve drained, exiting", flush=True)

    asyncio.run(main())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Microprogramming-language toolkit (Sint 1980 survey)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser("compile", help="compile to microcode")
    compile_parser.add_argument("file")
    compile_parser.add_argument("--lang", choices=language_names(),
                                required=True)
    compile_parser.add_argument("--machine", choices=machine_names(),
                                default="HM1")
    compile_parser.add_argument(
        "--dump-after", metavar="STAGE",
        help="print the program state after a pipeline stage "
             "(a stage name from 'repro languages', or 'all')")
    compile_parser.add_argument("--trace", metavar="FILE",
                                help="write a Chrome trace-event JSON "
                                     "(.jsonl for JSON-lines)")
    compile_parser.add_argument("--stats", action="store_true",
                                help="print the per-stage compile-time "
                                     "breakdown")
    compile_parser.set_defaults(handler=cmd_compile)

    run_parser = sub.add_parser("run", help="compile and simulate")
    run_parser.add_argument("file")
    run_parser.add_argument("--lang", choices=language_names(),
                            required=True)
    run_parser.add_argument("--machine", choices=machine_names(),
                            default="HM1")
    run_parser.add_argument("--set", action="append", metavar="VAR=VALUE",
                            help="initialize a variable or register")
    run_parser.add_argument("--mem", action="append", metavar="ADDR=VALUE",
                            help="initialize a memory word")
    run_parser.add_argument("--show", action="append", metavar="VAR",
                            help="print a variable's final value")
    run_parser.add_argument("--max-cycles", type=int, default=1_000_000)
    run_parser.add_argument(
        "--deadline-s", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the run (Simulator.deadline_s); "
             "overrunning it exits 3 with a structured "
             "'simulation limit: kind=deadline' report instead of "
             "hanging")
    run_parser.add_argument(
        "--engine", choices=("interpretive", "decoded", "traced"),
        default="decoded",
        help="simulator execution engine (decoded pre-lowers each "
             "control-store word once; traced additionally compiles hot "
             "loops to superinstructions; all observably identical)")
    run_parser.add_argument("--trace", metavar="FILE",
                            help="write compile spans + simulator cycle "
                                 "events as Chrome trace-event JSON "
                                 "(.jsonl for JSON-lines)")
    run_parser.add_argument("--stats", action="store_true",
                            help="print compile-time breakdown and the "
                                 "simulator hot-spot report")
    run_parser.set_defaults(handler=cmd_run)

    machines_parser = sub.add_parser("machines", help="list machines")
    machines_parser.add_argument("-v", "--verbose", action="store_true")
    machines_parser.set_defaults(handler=cmd_machines)

    languages_parser = sub.add_parser(
        "languages",
        help="list registered languages and machines with capabilities",
    )
    languages_parser.set_defaults(handler=cmd_languages)

    survey_parser = sub.add_parser("survey", help="print the survey matrix")
    survey_parser.set_defaults(handler=cmd_survey)

    verify_parser = sub.add_parser("verify", help="verify an S* program")
    verify_parser.add_argument("file")
    verify_parser.add_argument("--machine", choices=machine_names(),
                               default="HM1")
    verify_parser.set_defaults(handler=cmd_verify)

    faultsim_parser = sub.add_parser(
        "faultsim", help="simulate under explicitly injected faults"
    )
    faultsim_parser.add_argument("file")
    faultsim_parser.add_argument("--lang", choices=language_names(),
                                 required=True)
    faultsim_parser.add_argument("--machine", choices=machine_names(),
                                 default="HM1")
    faultsim_parser.add_argument(
        "--fault", action="append", metavar="SPEC", required=True,
        help="fault spec, e.g. bitflip:addr=3,bit=17 / "
             "memfault:op=read,nth=2 / stuck:reg=R2,value=0 / "
             "storm:period=7; repeat for several scenarios")
    faultsim_parser.add_argument("--seed", type=int, default=7)
    faultsim_parser.add_argument("--set", action="append",
                                 metavar="VAR=VALUE")
    faultsim_parser.add_argument("--mem", action="append",
                                 metavar="ADDR=VALUE")
    faultsim_parser.add_argument("--restart-safe", action="store_true",
                                 help="apply the 2.1.5 idempotence "
                                      "transform before injecting")
    faultsim_parser.add_argument(
        "--engine", choices=("interpretive", "decoded", "traced"),
        default="decoded",
        help="simulator execution engine for golden and fault runs")
    faultsim_parser.add_argument(
        "--deadline-s", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per simulated run; a scenario that "
             "overruns it classifies as 'hang' via the typed "
             "SimulationLimitError(kind='deadline') path")
    faultsim_parser.add_argument("--json", action="store_true",
                                 help="machine-readable report")
    faultsim_parser.add_argument("--trace", metavar="FILE",
                                 help="write compile spans + fault events "
                                      "as Chrome trace-event JSON")
    faultsim_parser.add_argument("--stats", action="store_true")
    faultsim_parser.set_defaults(handler=cmd_faultsim)

    campaign_parser = sub.add_parser(
        "campaign", help="seeded fault-injection campaign"
    )
    campaign_parser.add_argument("file")
    campaign_parser.add_argument("--lang", choices=language_names(),
                                 required=True)
    campaign_parser.add_argument(
        "--machine", action="append", choices=machine_names(),
        help="target machine; repeat for a matrix (default HM1)")
    campaign_parser.add_argument("-n", type=int, default=25,
                                 help="scenarios per machine (default 25)")
    campaign_parser.add_argument("--seed", type=int, default=7,
                                 help="fault-plan seed; same seed, same "
                                      "campaign, byte for byte")
    campaign_parser.add_argument("--set", action="append",
                                 metavar="VAR=VALUE")
    campaign_parser.add_argument("--mem", action="append",
                                 metavar="ADDR=VALUE")
    campaign_parser.add_argument("--restart-safe", action="store_true",
                                 help="apply the 2.1.5 idempotence "
                                      "transform before injecting")
    campaign_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard scenarios across N worker processes; reports stay "
             "byte-identical to --jobs 1 (default 1)")
    campaign_parser.add_argument(
        "--engine", choices=("interpretive", "decoded", "traced"),
        default="decoded",
        help="simulator execution engine for golden and fault runs")
    campaign_parser.add_argument(
        "--batch", type=int, default=1, metavar="N",
        help="group N scenarios per lockstep dispatch; reports stay "
             "byte-identical to --batch 1 (default 1)")
    campaign_parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="on-disk compile cache shared across invocations")
    campaign_parser.add_argument(
        "--metrics", action="store_true",
        help="collect a shard-mergeable metrics rollup (profiles, "
             "plan-cache and classification tallies); byte-identical "
             "for any --jobs value")
    campaign_parser.add_argument("--json", action="store_true",
                                 help="machine-readable report")
    campaign_parser.add_argument("-v", "--verbose", action="store_true",
                                 help="list every scenario outcome")
    campaign_parser.add_argument("--trace", metavar="FILE",
                                 help="write compile spans + fault events "
                                      "as Chrome trace-event JSON")
    campaign_parser.add_argument("--stats", action="store_true")
    campaign_parser.set_defaults(handler=cmd_campaign)

    profile_parser = sub.add_parser(
        "profile",
        help="profile a run (or replay a saved profile) and print the "
             "hot-path analysis",
    )
    profile_parser.add_argument(
        "file", nargs="?",
        help="source file to compile and run (omit with --replay)")
    profile_parser.add_argument("--lang", choices=language_names(),
                                help="source language (required with FILE)")
    profile_parser.add_argument("--machine", choices=machine_names(),
                                default="HM1")
    profile_parser.add_argument(
        "--replay", metavar="PROFILE.json",
        help="analyze a saved profile instead of running a program")
    profile_parser.add_argument(
        "--save", metavar="PROFILE.json",
        help="write the run's profile as JSON (replayable with --replay)")
    profile_parser.add_argument("--set", action="append",
                                metavar="VAR=VALUE")
    profile_parser.add_argument("--mem", action="append",
                                metavar="ADDR=VALUE")
    profile_parser.add_argument("--max-cycles", type=int, default=1_000_000)
    profile_parser.add_argument(
        "--engine", choices=("interpretive", "decoded", "traced"),
        default="decoded")
    profile_parser.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="hot traces to list (default 5)")
    profile_parser.add_argument(
        "--loops", action="store_true",
        help="include the loop-nesting table in the report")
    profile_parser.add_argument(
        "--flamegraph", metavar="FILE",
        help="write collapsed-stack lines for flamegraph.pl/speedscope")
    profile_parser.add_argument(
        "--prometheus", metavar="FILE",
        help="write the profile in Prometheus text exposition format")
    profile_parser.add_argument(
        "--json", action="store_true",
        help="print the full analysis as JSON instead of the report")
    profile_parser.set_defaults(handler=cmd_profile)

    difftest_parser = sub.add_parser(
        "difftest",
        help="differential-test the engines, cache, restart transform "
             "and campaign sharding over generated programs",
    )
    difftest_parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; case i reproduces from seed and i alone")
    difftest_parser.add_argument(
        "--budget", type=int, default=200, metavar="N",
        help="generated cases to run (default 200)")
    difftest_parser.add_argument(
        "--langs", nargs="+", choices=language_names(), metavar="LANG",
        help="languages to generate for (default: all with generators)")
    difftest_parser.add_argument(
        "--machines", nargs="+", default=["HM1", "CM1", "VM1"],
        choices=machine_names(), metavar="MACHINE",
        help="target machines (default: HM1 CM1 VM1)")
    difftest_parser.add_argument(
        "--axes", nargs="+",
        default=["engine", "traced", "batched", "cache", "restart",
                 "shards"],
        choices=("engine", "traced", "batched", "cache", "restart",
                 "shards"),
        metavar="AXIS",
        help="axis pairs to diff (default: all six)")
    difftest_parser.add_argument(
        "--batch", type=int, default=64, metavar="N",
        help="lane count for the batched axis (default 64); divergence "
             "reports stay identical for any N")
    difftest_parser.add_argument(
        "--corpus-dir", metavar="DIR",
        help="write self-contained JSON reproducers for divergences here")
    difftest_parser.add_argument(
        "--size", type=int, metavar="N",
        help="statements per generated program (default: seeded 6-18)")
    difftest_parser.add_argument(
        "--no-reduce", action="store_true",
        help="skip shrinking diverging programs")
    difftest_parser.add_argument(
        "--self-check", action="store_true",
        help="plant decoded-engine, trace-stitcher and batch-lane bugs "
             "and prove the campaign finds (and shrinks) them")
    difftest_parser.add_argument("--json", action="store_true",
                                 help="machine-readable report")
    difftest_parser.add_argument("--trace", metavar="FILE",
                                 help="write difftest.case/divergence "
                                      "events as Chrome trace-event JSON")
    difftest_parser.add_argument("--stats", action="store_true")
    difftest_parser.set_defaults(handler=cmd_difftest)

    serve_parser = sub.add_parser(
        "serve",
        help="run the fault-tolerant batch compile-and-run service "
             "(POST /compile /run /campaign, GET /healthz /metrics)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8750,
        help="bind port; 0 picks an ephemeral port (default 8750)")
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="crash-safe worker processes (default 2)")
    serve_parser.add_argument(
        "--limit-compile", type=int, default=32, metavar="N",
        help="max queued-or-running compile requests (default 32)")
    serve_parser.add_argument(
        "--limit-run", type=int, default=32, metavar="N",
        help="max queued-or-running run requests (default 32)")
    serve_parser.add_argument(
        "--limit-campaign", type=int, default=8, metavar="N",
        help="max queued-or-running campaigns — the first class shed "
             "under overload (default 8)")
    serve_parser.add_argument(
        "--default-deadline-s", type=float, default=30.0,
        metavar="SECONDS",
        help="per-request wall-clock budget when the client names "
             "none (default 30)")
    serve_parser.add_argument(
        "--max-deadline-s", type=float, default=120.0, metavar="SECONDS",
        help="cap on client-requested deadlines (default 120)")
    serve_parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the deterministic retry-backoff jitter")
    serve_parser.add_argument(
        "--breaker-strikes", type=int, default=2, metavar="N",
        help="worker deaths before a request key is quarantined "
             "(default 2)")
    serve_parser.add_argument(
        "--breaker-cooldown-s", type=float, default=30.0,
        metavar="SECONDS",
        help="quarantine time before one half-open probe (default 30)")
    serve_parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="shared on-disk compile cache for all workers")
    serve_parser.add_argument(
        "--drain-timeout-s", type=float, default=30.0, metavar="SECONDS",
        help="SIGTERM drain bound before in-flight work is aborted")
    serve_parser.add_argument(
        "--enable-chaos", action="store_true",
        help="accept 'chaos' request fields (worker self-kill "
             "schedules) — tests and CI smoke only")
    serve_parser.add_argument(
        "--batch-window-ms", type=float, default=5.0, metavar="MS",
        help="gather window for cross-request run micro-batching "
             "(default 5; 0 batches only what is already queued)")
    serve_parser.add_argument(
        "--batch-max-lanes", type=int, default=8, metavar="N",
        help="max lockstep lanes per batched dispatch "
             "(default 8; 1 disables batching)")
    serve_parser.set_defaults(handler=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
