"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile`` — compile a source file for a machine, print the
  control-store listing and statistics.
* ``run`` — compile and execute, with register/memory initialization
  and final-state reporting.
* ``machines`` — describe the shipped machine descriptions.
* ``survey`` — print the survey's language comparison matrix.
* ``verify`` — run the verification subsystem over an S* program.

``compile`` and ``run`` take ``--trace FILE`` (Chrome trace-event
JSON, or JSON-lines when the file ends in ``.jsonl``) and ``--stats``
(per-stage compile-time breakdown; for ``run`` also the simulator
hot-spot report).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.asm.loader import ControlStore
from repro.errors import ReproError
from repro.lang.empl import compile_empl
from repro.lang.mpl import compile_mpl
from repro.lang.simpl import compile_simpl
from repro.lang.sstar import compile_sstar, parse_sstar, verify_sstar
from repro.lang.yalll import compile_yalll
from repro.machine.machines import get_machine, machine_names
from repro.obs import (
    NULL_TRACER,
    TraceRecorder,
    Tracer,
    render_compile_report,
    render_hotspots,
    write_trace,
)
from repro.sim.simulator import Simulator

#: language name -> compile function (source, machine, tracer).
COMPILERS = {
    "simpl": lambda src, machine, tracer: compile_simpl(
        src, machine, tracer=tracer),
    "empl": lambda src, machine, tracer: compile_empl(
        src, machine, tracer=tracer),
    "sstar": lambda src, machine, tracer: compile_sstar(
        src, machine, tracer=tracer),
    "yalll": lambda src, machine, tracer: compile_yalll(
        src, machine, tracer=tracer),
    "mpl": lambda src, machine, tracer: compile_mpl(
        src, machine, tracer=tracer),
}


def _parse_assignments(pairs: list[str]) -> dict[str, int]:
    values: dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not value:
            raise ReproError(f"bad assignment {pair!r}; expected name=value")
        values[name] = int(value, 0)
    return values


def _tracer_for(args) -> Tracer | None:
    """A recording tracer when --trace/--stats ask for one, else null."""
    if getattr(args, "trace", None) or getattr(args, "stats", False):
        return Tracer()
    return NULL_TRACER


def _write_trace(events, path) -> None:
    try:
        write_trace(events, path)
    except OSError as error:
        raise ReproError(f"cannot write trace {path!r}: {error}") from error
    print(f"trace written to {path}")


def _compile(args, tracer=NULL_TRACER) -> tuple:
    source = Path(args.file).read_text()
    machine = get_machine(args.machine)
    result = COMPILERS[args.lang](source, machine, tracer)
    return machine, result


def cmd_compile(args) -> int:
    tracer = _tracer_for(args)
    machine, result = _compile(args, tracer)
    print(result.loaded.listing(machine))
    print()
    print(f"{len(result.loaded)} control words "
          f"({len(result.loaded) * machine.control.width} bits), "
          f"{result.composed.n_ops()} micro-operations, "
          f"compaction {result.composed.compaction_ratio():.2f} ops/word")
    if result.legalize_stats.expansions:
        print(f"legalization: {result.legalize_stats.expansions}")
    if result.allocation.mapping:
        print(f"allocation: {result.allocation.mapping}"
              + (f", spilled {result.allocation.spilled_slots}"
                 if result.allocation.spilled_slots else ""))
    if args.stats:
        print()
        print(render_compile_report(tracer.events))
    if args.trace:
        _write_trace(tracer.events, args.trace)
    return 0


def cmd_run(args) -> int:
    tracer = _tracer_for(args)
    machine, result = _compile(args, tracer)
    store = ControlStore(machine)
    store.load(result.loaded)
    recorder = TraceRecorder(tracer) if tracer.enabled else None
    simulator = Simulator(machine, store, recorder=recorder)
    mapping = result.allocation.mapping
    for name, value in _parse_assignments(args.set or []).items():
        simulator.state.write_reg(mapping.get(name, name), value)
    for address, value in _parse_assignments(args.mem or []).items():
        simulator.state.memory.load_words(int(address, 0), [value])
    outcome = simulator.run(result.loaded.name, max_cycles=args.max_cycles)
    print(outcome)
    if outcome.exit_value is not None:
        print(f"exit value: {outcome.exit_value} ({outcome.exit_value:#x})")
    if args.show:
        for name in args.show:
            register = mapping.get(name, name)
            print(f"{name} = {simulator.state.read_reg(register)}")
    if args.stats:
        print()
        print(render_compile_report(tracer.events))
        print()
        print(render_hotspots(outcome.profile))
    if args.trace:
        _write_trace(tracer.events, args.trace)
    return 0


def cmd_machines(args) -> int:
    for name in machine_names():
        machine = get_machine(name)
        print(machine.summary())
        if args.verbose:
            print(machine.control.describe())
            print()
    return 0


def cmd_survey(_args) -> int:
    from repro.survey import render_conclusions, render_matrix

    print(render_matrix())
    print()
    print(render_conclusions())
    return 0


def cmd_verify(args) -> int:
    machine = get_machine(args.machine)
    program = parse_sstar(Path(args.file).read_text())
    report = verify_sstar(program, machine)
    print(report)
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Microprogramming-language toolkit (Sint 1980 survey)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser("compile", help="compile to microcode")
    compile_parser.add_argument("file")
    compile_parser.add_argument("--lang", choices=sorted(COMPILERS),
                                required=True)
    compile_parser.add_argument("--machine", choices=machine_names(),
                                default="HM1")
    compile_parser.add_argument("--trace", metavar="FILE",
                                help="write a Chrome trace-event JSON "
                                     "(.jsonl for JSON-lines)")
    compile_parser.add_argument("--stats", action="store_true",
                                help="print the per-stage compile-time "
                                     "breakdown")
    compile_parser.set_defaults(handler=cmd_compile)

    run_parser = sub.add_parser("run", help="compile and simulate")
    run_parser.add_argument("file")
    run_parser.add_argument("--lang", choices=sorted(COMPILERS),
                            required=True)
    run_parser.add_argument("--machine", choices=machine_names(),
                            default="HM1")
    run_parser.add_argument("--set", action="append", metavar="VAR=VALUE",
                            help="initialize a variable or register")
    run_parser.add_argument("--mem", action="append", metavar="ADDR=VALUE",
                            help="initialize a memory word")
    run_parser.add_argument("--show", action="append", metavar="VAR",
                            help="print a variable's final value")
    run_parser.add_argument("--max-cycles", type=int, default=1_000_000)
    run_parser.add_argument("--trace", metavar="FILE",
                            help="write compile spans + simulator cycle "
                                 "events as Chrome trace-event JSON "
                                 "(.jsonl for JSON-lines)")
    run_parser.add_argument("--stats", action="store_true",
                            help="print compile-time breakdown and the "
                                 "simulator hot-spot report")
    run_parser.set_defaults(handler=cmd_run)

    machines_parser = sub.add_parser("machines", help="list machines")
    machines_parser.add_argument("-v", "--verbose", action="store_true")
    machines_parser.set_defaults(handler=cmd_machines)

    survey_parser = sub.add_parser("survey", help="print the survey matrix")
    survey_parser.set_defaults(handler=cmd_survey)

    verify_parser = sub.add_parser("verify", help="verify an S* program")
    verify_parser.add_argument("file")
    verify_parser.add_argument("--machine", choices=machine_names(),
                               default="HM1")
    verify_parser.set_defaults(handler=cmd_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
