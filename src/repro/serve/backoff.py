"""Deterministic retry backoff and the poison-pill circuit breaker.

Both halves of the service's crash story live here, wall-clock-free
and fully seeded so the chaos suite can assert exact behaviour:

* :class:`BackoffPolicy` — capped exponential backoff whose jitter is
  a pure function of ``(seed, key, attempt)``: the same crashed job
  re-queues on the identical schedule in every run of the service.
  Jitter spreads a thundering herd of re-queued shards without
  sacrificing reproducibility (the classic trade randomized backoff
  makes, made deterministic by hashing instead of sampling).
* :class:`CircuitBreakers` — a per-key strike counter with the usual
  three states.  A request key that kills workers ``strikes`` times
  is *quarantined* (open): further submissions are rejected
  immediately instead of being fed to fresh workers.  After
  ``cooldown_s`` the breaker lets exactly one probe through
  (half-open); a clean probe closes the breaker, another crash
  re-opens it.  The clock is injectable so tests drive the state
  machine without sleeping.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped, seeded-jittered exponential backoff.

    ``delay(key, attempt)`` for attempts 0, 1, 2, … grows as
    ``base_s * 2**attempt``, stretched by a deterministic jitter in
    ``[0, jitter)`` derived from SHA-256 of ``(seed, key, attempt)``,
    and clamped to ``cap_s``.  Properties the tests pin:

    * reproducible — equal inputs, equal schedule, across processes;
    * capped — no delay ever exceeds ``cap_s``;
    * monotone in expectation — the un-jittered base doubles.
    """

    base_s: float = 0.05
    cap_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError("backoff base_s must be > 0")
        if self.cap_s < self.base_s:
            raise ValueError("backoff cap_s must be >= base_s")
        if not 0 <= self.jitter <= 1:
            raise ValueError("backoff jitter must be in [0, 1]")

    def unit(self, key: str, attempt: int) -> float:
        """The deterministic jitter draw in [0, 1) for one retry."""
        blob = f"{self.seed}:{key}:{attempt}".encode()
        digest = hashlib.sha256(blob).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before re-queueing retry ``attempt``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        base = self.base_s * (2.0 ** attempt)
        stretched = base * (1.0 + self.jitter * self.unit(key, attempt))
        return min(self.cap_s, stretched)

    def schedule(self, key: str, attempts: int) -> list[float]:
        """The full delay schedule for ``attempts`` retries of ``key``."""
        return [self.delay(key, attempt) for attempt in range(attempts)]


# ----------------------------------------------------------------------
@dataclass
class _Breaker:
    """One key's strike record."""

    strikes: int = 0
    state: str = "closed"  # closed | open | half_open
    opened_at: float = 0.0
    probing: bool = False


@dataclass
class CircuitBreakers:
    """Per-request-key poison-pill quarantine.

    A *strike* is a worker death attributable to the key (crash while
    the key's job was in flight, or a deadline kill of a wedged
    worker).  ``strikes`` deaths open the breaker; while open,
    :meth:`admit` rejects the key without spending a worker on it.
    ``cooldown_s`` after opening, one submission is admitted as a
    half-open probe; its success closes the breaker and resets the
    count, another strike re-opens it for a fresh cooldown.
    """

    strikes: int = 2
    cooldown_s: float = 30.0
    clock: object = time.monotonic
    _keys: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.strikes < 1:
            raise ValueError("breaker strikes must be >= 1")

    def _get(self, key: str) -> _Breaker:
        breaker = self._keys.get(key)
        if breaker is None:
            breaker = self._keys[key] = _Breaker()
        return breaker

    # ------------------------------------------------------------------
    def admit(self, key: str) -> str:
        """Gate one submission: ``"allow"``, ``"probe"`` or ``"reject"``.

        ``"probe"`` admissions must be reported back through
        :meth:`record_success` / :meth:`record_strike` to resolve the
        half-open state; while a probe is outstanding every other
        submission of the key is rejected.
        """
        breaker = self._keys.get(key)
        if breaker is None or breaker.state == "closed":
            return "allow"
        if breaker.state == "open":
            if self.clock() - breaker.opened_at < self.cooldown_s:
                return "reject"
            breaker.state = "half_open"
            breaker.probing = True
            return "probe"
        # half_open: one probe at a time.
        if breaker.probing:
            return "reject"
        breaker.probing = True
        return "probe"

    def record_strike(self, key: str) -> bool:
        """Count one worker death against ``key``; True if now open."""
        breaker = self._get(key)
        breaker.strikes += 1
        breaker.probing = False
        if breaker.state == "half_open" or breaker.strikes >= self.strikes:
            breaker.state = "open"
            breaker.opened_at = self.clock()
        return breaker.state == "open"

    def record_success(self, key: str) -> None:
        """A completed job for ``key``: close a probe, clear strikes."""
        breaker = self._keys.get(key)
        if breaker is None:
            return
        breaker.strikes = 0
        breaker.state = "closed"
        breaker.probing = False

    # ------------------------------------------------------------------
    def is_open(self, key: str) -> bool:
        breaker = self._keys.get(key)
        return breaker is not None and breaker.state == "open"

    def states(self) -> dict[str, dict]:
        """Snapshot for ``/healthz``: every non-closed breaker."""
        return {
            key: {"state": b.state, "strikes": b.strikes}
            for key, b in sorted(self._keys.items())
            if b.state != "closed" or b.strikes
        }

    def counts(self) -> dict[str, int]:
        tally = {"closed": 0, "open": 0, "half_open": 0}
        for breaker in self._keys.values():
            tally[breaker.state] += 1
        return tally
