"""The asyncio service: admission, deadlines, routing, drain.

Request lifecycle::

    accept → parse (bounded HTTP) → validate (registry names, chaos
    gating) → admission control (per-class bounds, campaign shedding)
    → deadline stamp → worker pool → terminal structured response

Admission control is the backpressure story: each request class
(``compile`` / ``run`` / ``campaign``) has a bounded
queued-or-in-flight count, and a request past its bound is shed with
an *immediate* typed 429 — the client learns in microseconds, not
after a queue timeout.  Degradation is graceful and ordered: when
total load crosses ``shed_campaigns_at`` of capacity, campaign-class
requests shed even though their own bound has room, so cheap compile
traffic survives a campaign flood.

In-flight dedup rides just ahead of admission: a ``/run`` submission
whose content address (:func:`repro.serve.jobs.dedup_key`) matches an
execution already in flight awaits that execution instead of queueing
its own — no admission slot, no worker, one result fanned out to every
waiter.  Attachment is deadline-safe: a follower only coalesces when
the leader's outcome cannot be worse than its own run would have been
(follower budget ≤ leader's requested budget, or leader's remaining
time covers the follower's whole budget); otherwise it admits
normally.  The ``serve.dedup`` counter on ``/metrics`` counts
coalesced requests.

Past admission, compatible ``/run`` jobs micro-batch: the pool
gathers queued runs sharing a batch group key (same program, machine,
engine and options — only ``set``/``mem``/``show`` may differ) for up
to ``batch_window_ms`` and dispatches them as one lockstep
struct-of-arrays execution of up to ``batch_max_lanes`` lanes
(:mod:`repro.sim.batch`).  Admission mirrors ``batch_refusal``:
anything that cannot share a lane without observable divergence —
chaos hooks, non-decoded engines, an *explicit* client deadline —
runs scalar, so per-request responses stay byte-identical to serial
execution.  Refusals count into the ``serve.batch`` metrics family.

Deadlines are end-to-end: the request's budget is stamped at
admission, spent by queueing, enforced inside the worker by
``Simulator.deadline_s``, and backstopped by the supervisor's
deadline kill — every accepted request resolves to a terminal
structured response (success / timeout / quarantined / …), never a
hang or a dropped connection.

``SIGTERM`` (and :meth:`ReproService.shutdown`) drains: the listener
closes, new requests get 503, in-flight work finishes inside
``drain_timeout_s``, then the pool exits.
"""

from __future__ import annotations

import asyncio
import signal

from repro.obs.tracer import NULL_TRACER
from repro.serve.backoff import BackoffPolicy, CircuitBreakers
from repro.serve.config import ServeConfig
from repro.serve.http import (
    HttpError,
    Request,
    read_request,
    write_json,
    write_text,
)
from repro.serve.jobs import (
    batch_group_key,
    batch_refused,
    dedup_key,
    job_key,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.pool import WorkerPool

#: Pool/worker outcome status → HTTP response code.
STATUS_CODES = {
    "ok": 200,
    "error": 400,
    "timeout": 504,
    "quarantined": 503,
    "crashed": 500,
    "shutdown": 503,
}

_CLASS_OF = {"/compile": "compile", "/run": "run", "/campaign": "campaign"}


class ReproService:
    """One service instance: a listener plus a crash-safe pool."""

    def __init__(self, config: ServeConfig | None = None, *,
                 tracer=NULL_TRACER) -> None:
        self.config = config or ServeConfig()
        self.metrics = ServiceMetrics()
        self.pool = WorkerPool(
            self.config.workers,
            cache_dir=self.config.cache_dir,
            backoff=BackoffPolicy(
                base_s=self.config.retry_base_s,
                cap_s=self.config.retry_cap_s,
                jitter=self.config.retry_jitter,
                seed=self.config.seed,
            ),
            breakers=CircuitBreakers(
                strikes=self.config.breaker_strikes,
                cooldown_s=self.config.breaker_cooldown_s,
            ),
            max_requeues=self.config.max_requeues,
            kill_grace_s=self.config.kill_grace_s,
            batch_window_s=self.config.batch_window_ms / 1000.0,
            batch_max_lanes=self.config.batch_max_lanes,
            tracer=tracer,
        )
        self._active: dict[str, int] = {
            name: 0 for name in self.config.class_limits
        }
        #: In-flight /run executions by content address, as
        #: ``(task, requested_budget_s, absolute_deadline)`` — the
        #: deadline fields gate follower attachment (a follower must
        #: never inherit a timeout its own budget would have avoided).
        self._inflight: dict[
            str, tuple[asyncio.Future, float, float]
        ] = {}
        self._draining = False
        self._server: asyncio.base_events.Server | None = None
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self.pool.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )

    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop admission, drain in-flight work, stop the pool."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            deadline = (
                asyncio.get_running_loop().time()
                + self.config.drain_timeout_s
            )
            while any(self._active.values()):
                if asyncio.get_running_loop().time() >= deadline:
                    drain = False
                    break
                await asyncio.sleep(0.02)
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.pool.close(drain=drain)
        )
        self._stopped.set()

    async def run(self) -> None:
        """Start and serve until SIGTERM/SIGINT triggers a drain."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.shutdown()),
                )
            except (NotImplementedError, RuntimeError):
                pass
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _admit(self, job_class: str) -> dict | None:
        """None to admit, or the typed 429 shed payload."""
        limit = self.config.class_limits[job_class]
        total = sum(self._active.values())
        capacity = self.config.total_capacity()
        overloaded = self._active[job_class] >= limit
        shed_campaign = (
            job_class == "campaign"
            and total >= self.config.shed_campaigns_at * capacity
        )
        if not overloaded and not shed_campaign:
            return None
        self.metrics.record_shed(job_class)
        return {
            "error": "overloaded",
            "class": job_class,
            "active": self._active[job_class],
            "limit": limit,
            "shed_policy": ("campaigns_first" if shed_campaign
                            else "class_limit"),
            "retry_after_s": 1,
        }

    def _deadline_for(self, payload: dict) -> float:
        raw = payload.get("deadline_s", self.config.default_deadline_s)
        try:
            deadline = float(raw)
        except (TypeError, ValueError):
            raise HttpError(
                400, "bad_deadline", f"deadline_s must be a number, "
                f"got {raw!r}"
            ) from None
        if deadline <= 0:
            raise HttpError(400, "bad_deadline",
                            "deadline_s must be positive")
        return min(deadline, self.config.max_deadline_s)

    def _validate(self, payload: dict, job_class: str) -> None:
        from repro.registry import language_names, machine_names

        if "chaos" in payload and not self.config.enable_chaos:
            raise HttpError(
                400, "chaos_disabled",
                "chaos hooks need a service booted with enable_chaos",
            )
        if not payload.get("source"):
            raise HttpError(400, "missing_source",
                            "request needs a 'source' field")
        lang = payload.get("lang")
        if lang not in language_names():
            raise HttpError(
                400, "unknown_lang",
                f"unknown lang {lang!r}; expected one of "
                f"{', '.join(language_names())}",
            )
        machine = payload.get("machine", "HM1")
        if machine not in machine_names():
            raise HttpError(
                400, "unknown_machine",
                f"unknown machine {machine!r}; expected one of "
                f"{', '.join(machine_names())}",
            )

    # ------------------------------------------------------------------
    async def _submit(self, request: Request, job_class: str) -> tuple:
        payload = request.json()
        self._validate(payload, job_class)
        deadline_s = self._deadline_for(payload)
        job = dict(payload)
        job["op"] = job_class
        if job_class == "campaign" and self.config.collect_metrics:
            job["metrics"] = True
        # In-flight dedup (run only: its result is a pure function of
        # the payload, and runs are the expensive repeat offenders).  A
        # duplicate awaits the leader's execution *before* admission —
        # it consumes no class slot and no worker, and cannot be shed.
        # The shield keeps one impatient client's disconnect from
        # cancelling the execution everyone else is waiting on.
        #
        # Deadline safety: a follower may only attach when the leader's
        # outcome is guaranteed no worse than the follower's own run
        # would have been — either the follower asked for no more
        # budget than the leader requested (leader timeout ⟹ follower
        # would have timed out too), or the leader's *remaining* time
        # still covers the follower's whole budget.  A patient follower
        # behind a tight leader falls through to normal admission.
        loop = asyncio.get_running_loop()
        coalesce = dedup_key(job) if job_class == "run" else None
        entry = (
            self._inflight.get(coalesce) if coalesce is not None else None
        )
        if entry is not None:
            leader, leader_requested_s, leader_deadline = entry
            if (
                deadline_s <= leader_requested_s
                or leader_deadline - loop.time() >= deadline_s
            ):
                self.metrics.record_dedup(job_class)
                outcome = await asyncio.shield(leader)
                return self._respond(job_class, deadline_s, outcome)
        shed = self._admit(job_class)
        if shed is not None:
            return 429, shed, {"Retry-After": "1"}
        self.metrics.record_accept(job_class)
        self._active[job_class] += 1
        batch_key = None
        if job_class == "run" and self.config.batch_max_lanes > 1:
            refusal = batch_refused(job)
            if refusal is None:
                batch_key = batch_group_key(job)
            else:
                self.metrics.record_batch_refusal(refusal)
        task = asyncio.ensure_future(asyncio.wrap_future(
            self.pool.submit(job, key=job_key(job), deadline_s=deadline_s,
                             batch_key=batch_key)
        ))
        if coalesce is not None:
            # A patient follower that fell through replaces the tight
            # leader as the attachment target for later duplicates.
            self._inflight[coalesce] = (
                task, deadline_s, loop.time() + deadline_s,
            )
        try:
            outcome = await asyncio.shield(task)
        finally:
            if coalesce is not None \
                    and self._inflight.get(coalesce, (None,))[0] is task:
                self._inflight.pop(coalesce, None)
            self._active[job_class] -= 1
        return self._respond(job_class, deadline_s, outcome)

    def _respond(self, job_class: str, deadline_s: float,
                 outcome: dict) -> tuple:
        status = outcome.get("status", "error")
        self.metrics.record_outcome(job_class, status)
        if job_class == "campaign" and status == "ok":
            self.metrics.fold_campaign(outcome.get("result") or {})
        body = {"class": job_class, "deadline_s": deadline_s, **outcome}
        headers = {}
        if status == "quarantined":
            headers["Retry-After"] = str(
                int(self.config.breaker_cooldown_s) or 1
            )
        return STATUS_CODES.get(status, 500), body, headers

    def _healthz(self) -> dict:
        depth = self.pool.depth()
        return {
            "status": "draining" if self._draining else "ok",
            "queue": {
                name: {"active": self._active[name], "limit": limit}
                for name, limit in sorted(
                    self.config.class_limits.items()
                )
            },
            "pool": {**depth, **self.pool.stats.to_json()},
            "breakers": self.pool.breakers.states(),
            "requests": self.metrics.to_json(),
            "workers": self.config.workers,
        }

    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), timeout=10.0
                )
            except asyncio.TimeoutError:
                self.metrics.bad_requests += 1
                await write_json(writer, 408, {
                    "error": "timeout", "detail": "request not received",
                })
                return
            except HttpError as error:
                self.metrics.bad_requests += 1
                await write_json(writer, error.status, {
                    "error": error.code, "detail": str(error),
                })
                return
            if request is None:
                return
            await self._route(request, writer)
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: Request, writer) -> None:
        if request.method == "GET" and request.path == "/healthz":
            await write_json(writer, 200, self._healthz())
            return
        if request.method == "GET" and request.path == "/metrics":
            await write_text(writer, 200, self.metrics.to_prometheus(
                pool_stats=self.pool.stats.to_json(),
                depth=self.pool.depth(),
                breakers=self.pool.breakers.counts(),
            ))
            return
        job_class = _CLASS_OF.get(request.path)
        if job_class is None:
            await write_json(writer, 404, {
                "error": "not_found",
                "detail": f"no route {request.path!r}",
                "routes": sorted([*_CLASS_OF, "/healthz", "/metrics"]),
            })
            return
        if request.method != "POST":
            await write_json(writer, 405, {
                "error": "method_not_allowed",
                "detail": f"{request.path} takes POST",
            })
            return
        if self._draining:
            self.metrics.drained_rejects += 1
            await write_json(writer, 503, {
                "error": "draining",
                "detail": "service is shutting down",
            }, headers={"Retry-After": "5"})
            return
        try:
            status, body, headers = await self._submit(request, job_class)
        except HttpError as error:
            self.metrics.bad_requests += 1
            await write_json(writer, error.status, {
                "error": error.code, "detail": str(error),
            })
            return
        await write_json(writer, status, body, headers=headers)
