"""Service configuration: one dataclass, safe defaults.

Every robustness knob the tentpole names lives here so tests, the
CLI verb and the load benchmark configure the same machine from one
place.  Limits are deliberately small by default — admission control
only means something when the bounds are real.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_class_limits() -> dict[str, int]:
    # Queued-or-running bound per request class.  Campaigns are the
    # heavy class, so they get the smallest bound and shed first.
    return {"compile": 32, "run": 32, "campaign": 8}


@dataclass
class ServeConfig:
    """Everything ``repro serve`` can be told.

    Attributes:
        host/port: Bind address; port 0 picks an ephemeral port
            (tests and the load benchmark read it back).
        workers: Worker processes in the crash-safe pool.
        class_limits: Max queued-or-in-flight requests per class
            (``compile`` / ``run`` / ``campaign``); beyond it the
            request is shed with a typed 429.
        shed_campaigns_at: Graceful degradation: when *total* load
            reaches this fraction of total capacity, campaign-class
            requests shed even if their own class has room — compile
            and run keep being admitted until their bounds fill.
        default_deadline_s / max_deadline_s: Per-request wall-clock
            budget when the client names none, and the cap a client
            cannot exceed.
        retry_base_s / retry_cap_s / retry_jitter / seed: The capped
            seeded-jittered exponential backoff for re-queued work.
        max_requeues: Retry budget per request before it resolves
            ``crashed``.
        breaker_strikes: Worker deaths a request key is allowed
            before quarantine (the poison-pill circuit breaker).
        breaker_cooldown_s: Open time before one half-open probe.
        kill_grace_s: Extra wall-clock past a request's deadline
            before a wedged worker is killed outright.
        cache_dir: Shared on-disk compile-cache tier for all workers
            (None keeps per-worker memory tiers only).
        drain_timeout_s: SIGTERM drain bound: in-flight work gets
            this long to finish before the pool is aborted.
        enable_chaos: Accept ``chaos`` fields on requests (worker
            self-kill schedules).  Tests and the CI smoke only.
        collect_metrics: Fold every campaign's rollup into the
            service-wide :class:`~repro.obs.aggregate.CampaignMetrics`
            exposed at ``/metrics``.
        batch_window_ms: How long a queued batchable ``/run`` may
            wait for compatible lane-mates before it dispatches
            anyway.  0 disables gathering (still batches whatever is
            simultaneously queued).
        batch_max_lanes: Most lanes one lockstep dispatch may carry;
            1 disables cross-request batching entirely.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    class_limits: dict[str, int] = field(
        default_factory=_default_class_limits
    )
    shed_campaigns_at: float = 0.75
    default_deadline_s: float = 30.0
    max_deadline_s: float = 120.0
    retry_base_s: float = 0.05
    retry_cap_s: float = 2.0
    retry_jitter: float = 0.5
    seed: int = 0
    max_requeues: int = 4
    breaker_strikes: int = 2
    breaker_cooldown_s: float = 30.0
    kill_grace_s: float = 2.0
    cache_dir: str | None = None
    drain_timeout_s: float = 30.0
    enable_chaos: bool = False
    collect_metrics: bool = True
    batch_window_ms: float = 5.0
    batch_max_lanes: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("serve needs at least one worker")
        if self.batch_max_lanes < 1:
            raise ValueError("batch_max_lanes must be >= 1")
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        for name in ("compile", "run", "campaign"):
            if self.class_limits.get(name, 0) < 1:
                raise ValueError(f"class limit for {name!r} must be >= 1")
        if not 0 < self.shed_campaigns_at <= 1:
            raise ValueError("shed_campaigns_at must be in (0, 1]")
        if self.default_deadline_s > self.max_deadline_s:
            raise ValueError("default deadline exceeds the maximum")

    def total_capacity(self) -> int:
        return sum(self.class_limits.values())
