"""Service-level counters and their Prometheus exposition.

The service keeps its own request-path counters (accepted, shed,
timeouts, quarantines, …) and — when ``collect_metrics`` is on —
folds every campaign response's rollup into one service-lifetime
:class:`~repro.obs.aggregate.CampaignMetrics`, so ``/metrics`` speaks
the same exposition format (and reuses the same exporter) as
``python -m repro profile --prometheus``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.aggregate import CampaignMetrics
from repro.obs.export import _prom_series, to_prometheus


@dataclass
class ServiceMetrics:
    """Request-path counters, by class where it matters."""

    accepted: dict[str, int] = field(default_factory=dict)
    completed: dict[str, int] = field(default_factory=dict)
    shed: dict[str, int] = field(default_factory=dict)
    #: Requests coalesced onto an identical in-flight execution; they
    #: never reach admission control or the pool, so ``completed`` can
    #: exceed ``accepted`` by exactly this count.
    dedup: dict[str, int] = field(default_factory=dict)
    statuses: dict[str, int] = field(default_factory=dict)
    #: Runs that could not join a lockstep batch, by refusal reason
    #: (explicit deadline, chaos hooks, non-decoded engine, …).
    batch_refused: dict[str, int] = field(default_factory=dict)
    bad_requests: int = 0
    drained_rejects: int = 0
    #: Campaign responses whose rollup was folded service-wide — one
    #: fold per executed campaign, never per dedup follower.
    campaign_folds: int = 0
    #: Campaign rollups folded service-wide (collect_metrics only).
    campaigns: CampaignMetrics = field(default_factory=CampaignMetrics)
    _have_campaigns: bool = False

    def _bump(self, table: dict[str, int], key: str) -> None:
        table[key] = table.get(key, 0) + 1

    def record_accept(self, job_class: str) -> None:
        self._bump(self.accepted, job_class)

    def record_shed(self, job_class: str) -> None:
        self._bump(self.shed, job_class)

    def record_dedup(self, job_class: str) -> None:
        self._bump(self.dedup, job_class)

    def record_batch_refusal(self, reason: str) -> None:
        self._bump(self.batch_refused, reason)

    def record_outcome(self, job_class: str, status: str) -> None:
        self._bump(self.completed, job_class)
        self._bump(self.statuses, status)

    def fold_campaign(self, payload: dict) -> None:
        """Merge one campaign response's metrics block, if present."""
        block = payload.get("metrics")
        if not block:
            return
        self.campaign_folds += 1
        self.campaigns = self.campaigns.merge(
            CampaignMetrics.from_json(block)
        )
        self._have_campaigns = True

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "accepted": dict(sorted(self.accepted.items())),
            "completed": dict(sorted(self.completed.items())),
            "shed": dict(sorted(self.shed.items())),
            "dedup": dict(sorted(self.dedup.items())),
            "statuses": dict(sorted(self.statuses.items())),
            "batch_refused": dict(sorted(self.batch_refused.items())),
            "bad_requests": self.bad_requests,
            "drained_rejects": self.drained_rejects,
            "campaign_folds": self.campaign_folds,
        }

    def to_prometheus(self, *, pool_stats: dict, depth: dict,
                      breakers: dict[str, int],
                      namespace: str = "repro") -> str:
        """The ``/metrics`` document: serve families + campaign rollup."""
        lines: list[str] = []

        def family(suffix: str, kind: str, help_text: str) -> str:
            name = f"{namespace}_serve_{suffix}"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            return name

        name = family("requests_total", "counter",
                      "Requests accepted past admission control")
        for cls, count in sorted(self.accepted.items()):
            _prom_series(name, {"class": cls}, count, out=lines)
        name = family("shed_total", "counter",
                      "Requests shed by admission control (429)")
        for cls, count in sorted(self.shed.items()):
            _prom_series(name, {"class": cls}, count, out=lines)
        name = family("dedup_total", "counter",
                      "Requests coalesced onto an identical "
                      "in-flight execution")
        for cls, count in sorted(self.dedup.items()):
            _prom_series(name, {"class": cls}, count, out=lines)
        name = family("batch_total", "counter",
                      "Cross-request micro-batching: lockstep flushes, "
                      "lanes they carried, and refused runs")
        _prom_series(name, {"kind": "flushes"},
                     pool_stats.get("batch_flushes", 0), out=lines)
        _prom_series(name, {"kind": "lanes"},
                     pool_stats.get("batch_lanes", 0), out=lines)
        _prom_series(name, {"kind": "refused"},
                     sum(self.batch_refused.values()), out=lines)
        name = family("batch_refused_total", "counter",
                      "Runs refused a lockstep lane, by reason")
        for reason, count in sorted(self.batch_refused.items()):
            _prom_series(name, {"reason": reason}, count, out=lines)
        name = family("outcomes_total", "counter",
                      "Terminal response statuses")
        for status, count in sorted(self.statuses.items()):
            _prom_series(name, {"status": status}, count, out=lines)
        name = family("queue_depth", "gauge",
                      "Jobs pending or in flight in the worker pool")
        _prom_series(name, {"stage": "pending"}, depth.get("pending", 0),
                     out=lines)
        _prom_series(name, {"stage": "inflight"}, depth.get("inflight", 0),
                     out=lines)
        name = family("workers", "gauge", "Live worker processes")
        _prom_series(name, {}, depth.get("workers", 0), out=lines)
        name = family("pool_events_total", "counter",
                      "Worker-pool supervisor events")
        for event, count in sorted(pool_stats.items()):
            _prom_series(name, {"event": event}, count, out=lines)
        name = family("breakers", "gauge",
                      "Circuit breakers by state")
        for state, count in sorted(breakers.items()):
            _prom_series(name, {"state": state}, count, out=lines)
        document = "\n".join(lines) + "\n"
        if self._have_campaigns:
            document += to_prometheus(self.campaigns, namespace=namespace)
        return document
