"""Minimal HTTP/1.1 over asyncio streams — requests in, JSON out.

Hand-rolled on purpose: the service needs exactly one request shape
(a request line, headers, an optional JSON body) and one response
shape (a JSON document with a status code), and the stdlib's
``http.server`` is threaded/blocking where the service is asyncio.
The parser is strict and bounded — oversized bodies, missing lengths
and malformed framing are typed :class:`HttpError`\\ s that the
service turns into 4xx responses, never exceptions that kill the
connection handler.

Connections are one-shot (``Connection: close``): the service's unit
of admission is the request, and keep-alive would only let one slow
client pin connection state through a drain.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Hard cap on request bodies; a survey microprogram is a few KB, so
#: anything near this is either abuse or a mistake.
MAX_BODY_BYTES = 1 << 20
MAX_HEADER_BYTES = 16 << 10

STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or inadmissible request, with its response code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as error:
            raise HttpError(
                400, "bad_json", f"request body is not JSON: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise HttpError(
                400, "bad_json", "request body must be a JSON object"
            )
        return payload


def _parse_query(raw: str) -> dict[str, str]:
    query: dict[str, str] = {}
    for part in raw.split("&"):
        if not part:
            continue
        name, _, value = part.partition("=")
        query[name] = value
    return query


async def read_request(reader) -> Request | None:
    """Parse one request off the stream; None on clean EOF.

    Framing violations raise :class:`HttpError`; the caller answers
    with the error's status and closes.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not line:
        return None
    if len(line) > MAX_HEADER_BYTES:
        raise HttpError(400, "bad_request", "request line too long")
    try:
        method, target, _version = line.decode("ascii").split(None, 2)
    except (UnicodeDecodeError, ValueError):
        raise HttpError(400, "bad_request", "malformed request line") \
            from None
    path, _, raw_query = target.partition("?")
    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(431, "bad_request", "headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad_request",
                            "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "bad_request", "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(
                413, "too_large",
                f"body of {length} bytes exceeds {MAX_BODY_BYTES}",
            )
        try:
            body = await reader.readexactly(length)
        except Exception:
            raise HttpError(400, "bad_request", "truncated body") from None
    return Request(
        method=method.upper(),
        path=path,
        query=_parse_query(raw_query),
        headers=headers,
        body=body,
    )


async def write_json(writer, status: int, payload: dict, *,
                     headers: dict[str, str] | None = None) -> None:
    """One JSON response, deterministically serialized, and close.

    ``sort_keys`` matters: the chaos suite asserts byte-identical
    response bodies across crash-driven retries, which requires the
    serialization itself to be canonical.
    """
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    reason = STATUS_TEXT.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
    try:
        await writer.drain()
    except (ConnectionError, OSError):
        pass


async def write_text(writer, status: int, text: str, *,
                     content_type: str = "text/plain; version=0.0.4"
                     ) -> None:
    """A plain-text response (the Prometheus exposition endpoint)."""
    body = text.encode()
    reason = STATUS_TEXT.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    writer.write(head.encode() + body)
    try:
        await writer.drain()
    except (ConnectionError, OSError):
        pass
