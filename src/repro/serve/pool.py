"""The crash-safe worker pool: supervised processes, typed outcomes.

``multiprocessing.Pool`` famously turns a SIGKILLed worker into a
hang (the parent waits forever for a result that will never come).
This pool is built the other way around: every worker is a directly
supervised ``multiprocessing.Process`` with a dedicated duplex pipe,
and a supervisor thread multiplexes over *both* the result pipes and
the process **sentinels** with :func:`multiprocessing.connection.wait`
— so worker death (segfault, OOM-kill, chaos SIGKILL) is an observed
event, not an absence of one.

Lifecycle of a submitted job:

1. :meth:`WorkerPool.submit` gates the job's key through the circuit
   breaker (open ⇒ immediate ``quarantined`` outcome), then queues a
   ticket and returns a :class:`concurrent.futures.Future`.
2. The supervisor dispatches tickets to idle workers, oldest
   admissible first (backoff ``not_before`` gates re-queued work).
3. A worker answers with a structured response → the future resolves.
4. A worker *dies* with the ticket in flight → the worker is
   respawned, the death is a breaker strike against the ticket's key,
   and the ticket re-queues with capped seeded-jittered exponential
   backoff — unless the breaker opened (``quarantined``) or the retry
   budget is exhausted (``crashed``).
5. A ticket overruns its deadline: in the queue it resolves
   ``timeout`` without ever running; in flight, the worker gets
   ``kill_grace_s`` beyond the deadline (the in-simulator deadline
   should fire first and return a structured timeout), then is killed
   and the ticket resolves ``timeout`` — a wedged worker also counts
   a strike, since it cost a process.

Every future resolves to a dict with a terminal ``status``: ``ok`` /
``timeout`` / ``error`` (from the worker), or ``quarantined`` /
``crashed`` / ``shutdown`` (from the pool).  Futures are never failed
with exceptions — callers branch on data, not exception types, and
the HTTP layer maps statuses straight to response codes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing.connection import wait as mp_wait

from repro.obs.events import PH_COMPLETE, Event
from repro.obs.tracer import NULL_TRACER
from repro.serve.backoff import BackoffPolicy, CircuitBreakers
from repro.serve.jobs import execute_batch, execute_job, reset_worker_cache


def _worker_main(conn, cache_dir) -> None:
    """Worker process body: recv lanes, execute, send responses, repeat.

    A message is a list of ``(ticket_id, job, attempt, budget_s)``
    lanes: one lane executes through ``execute_job``, several through
    ``execute_batch`` (the lockstep path).  Both guarantee a
    structured response for every lane, so the only way out of this
    loop is a shutdown sentinel (``None``) or process death — which
    is exactly the contract the supervisor's crash detection relies
    on.
    """
    # Under fork the parent's compile cache (if it ever executed jobs
    # in-process) arrives via inherited globals pinned to the wrong
    # cache_dir; start from a clean slate.
    reset_worker_cache()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        if len(message) == 1:
            ticket_id, job, attempt, budget_s = message[0]
            responses = [(ticket_id, execute_job(
                job, attempt=attempt, budget_s=budget_s,
                cache_dir=cache_dir,
            ))]
        else:
            responses = execute_batch(message, cache_dir=cache_dir)
        try:
            conn.send(responses)
        except (BrokenPipeError, OSError):
            return


@dataclass
class _Ticket:
    """One submitted job's lifetime through queue, retries, outcome."""

    ticket_id: int
    key: str
    job: dict
    future: Future
    deadline: float | None  # absolute monotonic, None = unbounded
    submitted: float = 0.0
    attempt: int = 0        # dispatch attempts so far (crashes bump it)
    not_before: float = 0.0  # backoff gate for re-queued tickets
    probe: bool = False      # half-open breaker probe
    batch_key: str | None = None  # gather identity; None = always scalar

    def budget(self, now: float) -> float | None:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - now)


class _Worker:
    """One supervised process + its pipe."""

    def __init__(self, ctx, cache_dir) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn, cache_dir), daemon=True
        )
        self.process.start()
        child_conn.close()
        #: The lanes dispatched to this worker (empty = idle): one
        #: ticket for scalar work, several for a lockstep batch.
        self.inflight: list[_Ticket] = []
        self.dispatched_at = 0.0

    @property
    def sentinel(self) -> int:
        return self.process.sentinel

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, AttributeError):
            pass

    def reap(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=5)


@dataclass
class PoolStats:
    """Supervisor counters, exposed verbatim by ``/healthz``."""

    submitted: int = 0
    completed: int = 0
    crashes: int = 0
    restarts: int = 0
    requeues: int = 0
    quarantined: int = 0
    timeouts: int = 0
    deadline_kills: int = 0
    crashed_out: int = 0
    rejected_open: int = 0
    #: Lockstep dispatches of >= 2 lanes, and the lanes they carried
    #: (lanes / flushes = mean batch occupancy).
    batch_flushes: int = 0
    batch_lanes: int = 0

    def to_json(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "requeues": self.requeues,
            "quarantined": self.quarantined,
            "timeouts": self.timeouts,
            "deadline_kills": self.deadline_kills,
            "crashed_out": self.crashed_out,
            "rejected_open": self.rejected_open,
            "batch_flushes": self.batch_flushes,
            "batch_lanes": self.batch_lanes,
        }


class WorkerPool:
    """Supervised crash-safe pool; see the module docstring.

    Thread-safe: :meth:`submit` may be called from any thread (the
    asyncio service calls it from the event loop and wraps the future
    with ``asyncio.wrap_future``).
    """

    def __init__(
        self,
        n_workers: int = 2,
        *,
        cache_dir: str | None = None,
        backoff: BackoffPolicy | None = None,
        breakers: CircuitBreakers | None = None,
        max_requeues: int = 4,
        kill_grace_s: float = 2.0,
        batch_window_s: float = 0.0,
        batch_max_lanes: int = 1,
        tracer=NULL_TRACER,
        clock=time.monotonic,
    ) -> None:
        if n_workers < 1:
            raise ValueError("pool needs at least one worker")
        if batch_max_lanes < 1:
            raise ValueError("batch_max_lanes must be >= 1")
        self.n_workers = n_workers
        self.cache_dir = cache_dir
        self.backoff = backoff or BackoffPolicy()
        self.breakers = breakers or CircuitBreakers()
        self.max_requeues = max_requeues
        self.kill_grace_s = kill_grace_s
        self.batch_window_s = batch_window_s
        self.batch_max_lanes = batch_max_lanes
        self.tracer = tracer
        self.clock = clock
        self.stats = PoolStats()
        self._ctx = multiprocessing.get_context()
        self._lock = threading.Lock()
        self._pending: list[_Ticket] = []
        self._workers: list[_Worker] = []
        self._next_id = 0
        self._closing = False
        self._drain = True
        self._started = False
        self._wake_r, self._wake_w = os.pipe()
        self._supervisor: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            self._workers = [
                _Worker(self._ctx, self.cache_dir)
                for _ in range(self.n_workers)
            ]
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-serve-pool", daemon=True
        )
        self._supervisor.start()

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    # ------------------------------------------------------------------
    def submit(self, job: dict, *, key: str,
               deadline_s: float | None = None,
               batch_key: str | None = None) -> Future:
        """Queue one job; resolves to a terminal structured outcome.

        ``batch_key`` marks the job gatherable: queued jobs sharing a
        key may dispatch together as one lockstep batch (bounded by
        ``batch_max_lanes``, after at most ``batch_window_s`` of
        gathering).  Half-open breaker probes always run scalar — a
        probe's strike semantics must not be chargeable to innocent
        lane-mates.
        """
        future: Future = Future()
        now = self.clock()
        with self._lock:
            if not self._started or self._closing:
                future.set_result({"status": "shutdown"})
                return future
            verdict = self.breakers.admit(key)
            if verdict == "reject":
                self.stats.rejected_open += 1
                future.set_result({
                    "status": "quarantined",
                    "key": key,
                    "detail": "circuit breaker open for this request",
                })
                return future
            self.stats.submitted += 1
            ticket = _Ticket(
                ticket_id=self._next_id,
                key=key,
                job=job,
                future=future,
                deadline=(now + deadline_s) if deadline_s is not None
                else None,
                submitted=now,
                probe=(verdict == "probe"),
                batch_key=(
                    batch_key if self.batch_max_lanes > 1
                    and verdict != "probe" else None
                ),
            )
            self._next_id += 1
            self._pending.append(ticket)
        self._wake()
        return future

    def depth(self) -> dict[str, int]:
        with self._lock:
            inflight = sum(len(w.inflight) for w in self._workers)
            return {"pending": len(self._pending), "inflight": inflight,
                    "workers": len(self._workers)}

    # ------------------------------------------------------------------
    def close(self, *, drain: bool = True, timeout: float | None = 30.0
              ) -> None:
        """Stop the pool: drain in-flight work (default) or abort it."""
        with self._lock:
            if not self._started:
                return
            self._closing = True
            self._drain = drain
        self._wake()
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Supervisor internals — all _locked helpers assume self._lock held.
    # ------------------------------------------------------------------
    def _complete_locked(self, ticket: _Ticket, outcome: dict) -> None:
        self.stats.completed += 1
        if not ticket.future.done():
            ticket.future.set_result(outcome)

    def _send_lanes_locked(self, worker: _Worker, lanes: list[_Ticket],
                           now: float) -> None:
        for ticket in lanes:
            self._pending.remove(ticket)
        worker.inflight = list(lanes)
        worker.dispatched_at = now
        if len(lanes) > 1:
            self.stats.batch_flushes += 1
            self.stats.batch_lanes += len(lanes)
            if self.tracer.enabled:
                gathered = now - min(t.submitted for t in lanes)
                end = self.tracer.now()
                self.tracer.emit(Event(
                    name="serve.batch.gather", cat="serve",
                    ph=PH_COMPLETE, ts=end - gathered * 1e6,
                    dur=gathered * 1e6,
                    args={"lanes": len(lanes),
                          "batch_key": lanes[0].batch_key},
                ))
        try:
            worker.conn.send([
                (t.ticket_id, t.job, t.attempt, t.budget(now))
                for t in lanes
            ])
        except (BrokenPipeError, OSError):
            # The worker died between waits; the sentinel event
            # will re-queue these lanes through the crash path.
            pass

    def _dispatch_locked(self, now: float) -> None:
        idle = [w for w in self._workers if not w.inflight]
        if not idle:
            return
        admissible = [
            t for t in self._pending if t.not_before <= now
        ]
        held: set[str] = set()
        for ticket in admissible:
            if ticket not in self._pending:
                continue  # dispatched as a lane-mate earlier this pass
            # Queue-stage deadline: never dispatch dead-on-arrival work.
            if ticket.deadline is not None and now >= ticket.deadline:
                self._pending.remove(ticket)
                self.stats.timeouts += 1
                self._complete_locked(ticket, {
                    "status": "timeout",
                    "where": "queue",
                    "detail": "deadline expired before dispatch",
                })
                continue
            if not idle:
                break
            if ticket.batch_key is None:
                self._send_lanes_locked(idle.pop(), [ticket], now)
                continue
            if ticket.batch_key in held:
                continue
            group = [
                t for t in admissible
                if t.batch_key == ticket.batch_key and t in self._pending
                and not (t.deadline is not None and now >= t.deadline)
            ]
            # Gather: hold an under-full group while its window is
            # open and the pool is not draining — the whole point of
            # the window is to let lane-mates arrive.
            if (
                len(group) < self.batch_max_lanes
                and now - group[0].submitted < self.batch_window_s
                and not self._closing
            ):
                held.add(ticket.batch_key)
                continue
            self._send_lanes_locked(
                idle.pop(), group[:self.batch_max_lanes], now
            )

    def _next_wait_locked(self, now: float) -> float:
        """Seconds until the earliest timer the supervisor must honor."""
        horizon = 0.5
        for ticket in self._pending:
            if ticket.not_before > now:
                horizon = min(horizon, ticket.not_before - now)
            if ticket.deadline is not None and ticket.deadline > now:
                horizon = min(horizon, ticket.deadline - now)
            if ticket.batch_key is not None:
                flush_at = ticket.submitted + self.batch_window_s
                if flush_at > now:
                    horizon = min(horizon, flush_at - now)
        for worker in self._workers:
            for ticket in worker.inflight:
                if ticket.deadline is not None:
                    kill_at = ticket.deadline + self.kill_grace_s
                    horizon = min(horizon, max(0.0, kill_at - now))
        return max(0.01, horizon)

    def _respawn_locked(self, worker: _Worker) -> None:
        index = self._workers.index(worker)
        worker.reap()
        if self._closing and not self._pending:
            self._workers.pop(index)
            return
        self.stats.restarts += 1
        self._workers[index] = _Worker(self._ctx, self.cache_dir)

    def _strike_locked(self, ticket: _Ticket, now: float, *,
                       cause: str) -> None:
        """One worker death charged to ``ticket``: quarantine or retry."""
        opened = self.breakers.record_strike(ticket.key)
        if opened or ticket.probe:
            self.stats.quarantined += 1
            self._complete_locked(ticket, {
                "status": "quarantined",
                "key": ticket.key,
                "cause": cause,
                "attempts": ticket.attempt + 1,
            })
            return
        if cause == "deadline":
            # The request's budget is gone; retrying cannot help.
            self.stats.timeouts += 1
            self._complete_locked(ticket, {
                "status": "timeout",
                "where": "worker",
                "detail": "worker killed past deadline grace",
            })
            return
        if ticket.attempt + 1 > self.max_requeues:
            self.stats.crashed_out += 1
            self._complete_locked(ticket, {
                "status": "crashed",
                "attempts": ticket.attempt + 1,
                "detail": "retry budget exhausted",
            })
            return
        delay = self.backoff.delay(ticket.key, ticket.attempt)
        ticket.attempt += 1
        ticket.not_before = now + delay
        self.stats.requeues += 1
        self._pending.append(ticket)

    def _handle_crash_locked(self, worker: _Worker, now: float) -> None:
        self.stats.crashes += 1
        tickets, worker.inflight = worker.inflight, []
        self._respawn_locked(worker)
        for ticket in tickets:
            self._strike_locked(ticket, now, cause="crash")

    def _check_deadlines_locked(self, now: float) -> None:
        for ticket in list(self._pending):
            if ticket.deadline is not None and now >= ticket.deadline:
                self._pending.remove(ticket)
                self.stats.timeouts += 1
                self._complete_locked(ticket, {
                    "status": "timeout",
                    "where": "queue",
                    "detail": "deadline expired before dispatch",
                })
        for worker in self._workers:
            expired = [
                t for t in worker.inflight
                if t.deadline is not None
                and now >= t.deadline + self.kill_grace_s
            ]
            if expired:
                # The in-simulator deadline should have fired long ago;
                # the worker is wedged outside simulated code.  Kill it.
                # Lane-mates pay the crash price (a retry), not the
                # expired lane's timeout verdict.
                self.stats.deadline_kills += 1
                self.stats.crashes += 1
                tickets, worker.inflight = worker.inflight, []
                worker.kill()
                self._respawn_locked(worker)
                for ticket in tickets:
                    cause = "deadline" if ticket in expired else "crash"
                    self._strike_locked(ticket, now, cause=cause)

    def _abort_pending_locked(self) -> None:
        for ticket in self._pending:
            self._complete_locked(ticket, {"status": "shutdown"})
        self._pending.clear()
        for worker in self._workers:
            tickets, worker.inflight = worker.inflight, []
            for ticket in tickets:
                self._complete_locked(ticket, {"status": "shutdown"})
            worker.kill()

    def _supervise(self) -> None:
        while True:
            now = self.clock()
            with self._lock:
                if self._closing and not self._drain:
                    self._abort_pending_locked()
                self._check_deadlines_locked(now)
                self._dispatch_locked(now)
                idle = all(not w.inflight for w in self._workers)
                if self._closing and idle and (
                    not self._pending or not self._drain
                ):
                    for worker in self._workers:
                        try:
                            worker.conn.send(None)
                        except (BrokenPipeError, OSError):
                            pass
                        worker.reap()
                    self._workers.clear()
                    return
                conn_map = {w.conn: w for w in self._workers}
                sentinel_map = {w.sentinel: w for w in self._workers}
                timeout = self._next_wait_locked(now)
            ready = mp_wait(
                [self._wake_r, *conn_map, *sentinel_map], timeout
            )
            now = self.clock()
            with self._lock:
                crashed: list[_Worker] = []
                for item in ready:
                    if item == self._wake_r:
                        try:
                            os.read(self._wake_r, 4096)
                        except OSError:
                            pass
                        continue
                    worker = conn_map.get(item)
                    if worker is not None:
                        if worker not in self._workers:
                            continue  # already respawned this round
                        try:
                            pairs = worker.conn.recv()
                        except (EOFError, OSError):
                            if worker not in crashed:
                                crashed.append(worker)
                            continue
                        tickets, worker.inflight = worker.inflight, []
                        if len(tickets) > 1 and self.tracer.enabled:
                            dur = (now - worker.dispatched_at) * 1e6
                            self.tracer.emit(Event(
                                name="serve.batch.execute", cat="serve",
                                ph=PH_COMPLETE,
                                ts=self.tracer.now() - dur, dur=dur,
                                args={"lanes": len(tickets)},
                            ))
                        by_id = {t.ticket_id: t for t in tickets}
                        for ticket_id, response in pairs:
                            ticket = by_id.pop(ticket_id, None)
                            if ticket is None:
                                continue  # stale lane (already struck)
                            self.breakers.record_success(ticket.key)
                            self._complete_locked(ticket, response)
                        for ticket in by_id.values():
                            # A worker must answer every lane it was
                            # sent; a missing one is a protocol fault,
                            # surfaced as a typed terminal error.
                            self._complete_locked(ticket, {
                                "status": "error",
                                "error": {
                                    "type": "PoolProtocolError",
                                    "message": "worker response missing"
                                               " this lane",
                                },
                            })
                        continue
                    worker = sentinel_map.get(item)
                    if (
                        worker is not None
                        and worker in self._workers
                        and worker not in crashed
                    ):
                        crashed.append(worker)
                for worker in crashed:
                    if worker in self._workers:
                        self._handle_crash_locked(worker, now)
