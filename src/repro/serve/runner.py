"""In-process service runner + tiny blocking client.

Tests, the chaos suite and ``bench_serve_load.py`` all need the same
thing: a real service on a real socket, owned by the current process
so its pool, breakers and counters are inspectable — and torn down
deterministically.  :class:`ServiceRunner` runs the asyncio service
on a background thread and exposes a blocking ``http.client``-based
:meth:`request` helper, so callers stay plain synchronous code.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

from repro.serve.config import ServeConfig
from repro.serve.service import ReproService


class ServiceRunner:
    """Context manager: a live service on an ephemeral port."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.service: ReproService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    # ------------------------------------------------------------------
    def start(self) -> "ServiceRunner":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        if self._error is not None:
            raise RuntimeError(
                f"service failed to start: {self._error}"
            ) from self._error
        return self

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # surface startup failures
            self._error = error
            self._ready.set()

    async def _amain(self) -> None:
        self.service = ReproService(self.config)
        await self.service.start()
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.service._stopped.wait()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        assert self.service is not None
        return self.service.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.config.host, self.port)

    def stop(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        if self._loop is None or self.service is None:
            return
        if not self._loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(
                self.service.shutdown(drain=drain), self._loop
            )
            try:
                future.result(timeout=timeout)
            except Exception:
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceRunner":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def request(self, method: str, path: str, payload: dict | None = None,
                *, timeout: float = 60.0) -> tuple[int, object]:
        """One blocking request; returns ``(status, decoded body)``."""
        connection = http.client.HTTPConnection(
            self.config.host, self.port, timeout=timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            return response.status, json.loads(raw)
        return response.status, raw.decode()
