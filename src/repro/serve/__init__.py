"""repro.serve: a fault-tolerant batch compile-and-run service (S21).

The survey's toolchains earned their keep by staying *alive* — REC's
compiler ran for decades as a long-lived interactive service on the
IBM1130 simulator, and VADL's modern pipeline is submit-description,
get-artifacts-back.  This package is that endpoint for the repro
toolkit: an asyncio HTTP/JSON service wrapping the pipeline, the
registry, the compile cache and the campaign harness behind four
endpoints (``/compile``, ``/run``, ``/campaign``, ``/healthz``),
built robustness-first:

* **Admission control & backpressure** — bounded per-class queues
  with typed 429 rejection; under overload, campaign-class requests
  shed before compile-class ones (graceful degradation).
* **Deadline propagation** — a per-request wall-clock budget flows
  from admission through queueing into ``Simulator.deadline_s``, so
  a wedged microprogram returns a structured timeout, never a hang.
* **Crash-safe worker pool** — simulation work runs in supervised
  ``multiprocessing`` workers; worker death (segfault, OOM-kill,
  chaos injection) is detected via process sentinels, the worker is
  respawned, and the in-flight job is re-queued with capped,
  seeded-jittered exponential backoff.  A request that kills workers
  repeatedly is quarantined by a per-key circuit breaker with
  half-open probes.
* **Cross-request micro-batching** — compatible queued ``/run`` jobs
  gather (``batch_window_ms`` / ``batch_max_lanes``) and execute as
  one lockstep struct-of-arrays batch (:mod:`repro.sim.batch`) inside
  a single worker, with results demultiplexed back per request —
  byte-identical to scalar execution, admission mirroring
  ``batch_refusal``.
* **Graceful drain** — ``SIGTERM`` stops admission, finishes
  in-flight work, then exits; ``/healthz`` and ``/metrics`` report
  queue depths, breaker states, worker restarts and the campaign
  metrics rollup through the existing Prometheus exporter.

Everything is stdlib-only (``asyncio.start_server`` + hand-rolled
HTTP/1.1 parsing) and deterministic where it matters: backoff
schedules are pure functions of ``(seed, key, attempt)`` and job
results are byte-identical across retries, which is what lets the
chaos suite in ``tests/serve/`` assert exact outcomes while killing
workers at fixed seeds.
"""

from repro.serve.backoff import BackoffPolicy, CircuitBreakers
from repro.serve.config import ServeConfig
from repro.serve.http import HttpError, Request, read_request, write_json
from repro.serve.jobs import (
    batch_group_key,
    batch_refused,
    dedup_key,
    execute_batch,
    execute_job,
    job_key,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.pool import PoolStats, WorkerPool
from repro.serve.runner import ServiceRunner
from repro.serve.service import ReproService

__all__ = [
    "BackoffPolicy",
    "CircuitBreakers",
    "HttpError",
    "PoolStats",
    "ReproService",
    "Request",
    "ServeConfig",
    "ServiceMetrics",
    "ServiceRunner",
    "WorkerPool",
    "batch_group_key",
    "batch_refused",
    "dedup_key",
    "execute_batch",
    "execute_job",
    "job_key",
    "read_request",
    "write_json",
]
