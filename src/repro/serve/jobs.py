"""Job payloads and their in-worker execution.

A *job* is the picklable request a worker process executes: a plain
dict with an ``"op"`` (``compile`` / ``run`` / ``campaign``) plus the
operation's parameters.  :func:`execute_job` runs one job to a
*terminal structured response* — a JSON-ready dict whose ``status``
is ``ok``, ``timeout`` or ``error`` — and never lets an exception
escape (the pool treats an escaping worker as dead).  The ``result``
field of a response is a pure function of the job payload, which is
what lets the chaos suite assert byte-identical results across
crash-driven retries.

Deadline propagation ends here: the worker receives the request's
*remaining* wall-clock budget and hands it to
``Simulator.deadline_s``, so a microprogram that wedges produces a
typed ``SimulationLimitError`` and a structured ``timeout`` response
instead of holding the worker hostage.  (A worker stuck outside the
simulator — e.g. in a pathological compile — is the supervisor's
problem: it kills and respawns past the grace period.)

Chaos hooks: a job may carry ``{"chaos": {"kill_on_attempts": [...]}}``.
When the current dispatch attempt is listed, the worker SIGKILLs
itself *before* doing any work — a deterministic stand-in for
segfault/OOM death that the pool must detect, respawn and re-queue
around.  ``{"chaos": {"sleep_s": N}}`` wedges the worker outside the
simulator instead, exercising the supervisor's deadline kill.  The service only forwards the ``chaos`` field when booted
with ``enable_chaos`` (tests, CI smoke); production configs reject it.
"""

from __future__ import annotations

import os
import signal
import time

from repro.cache import CompileCache, compile_key
from repro.errors import ReproError, SimulationLimitError

#: Request classes, in shed order: under overload the service drops
#: campaign-class admissions first, compile-class last.
JOB_CLASSES = ("campaign", "run", "compile")


def job_key(job: dict) -> str:
    """The quarantine/backoff identity of a job.

    Two submissions of the same work share a key, so a poison request
    re-submitted verbatim hits its own open breaker.  For compile/run
    jobs this is the compile cache's content address (plus the run's
    input state); campaigns add their scenario envelope.  Jobs with
    unknown machines/languages fail later with a structured error, so
    the key falls back to a stable render of the payload.
    """
    import hashlib

    from repro.registry import build_machine

    try:
        machine = build_machine(job.get("machine", "HM1"))
        base = compile_key(
            job.get("source", ""), job.get("lang", ""), machine,
            job.get("options") or None,
        )
    except Exception:
        rendered = repr(sorted(job.items(), key=lambda kv: kv[0]))
        base = hashlib.sha256(rendered.encode()).hexdigest()
    extras = [job.get("op", "")]
    for fld in ("set", "mem", "n", "seed", "restart_safe", "max_cycles",
                "engine", "chaos"):
        if job.get(fld) is not None:
            extras.append(f"{fld}={job[fld]!r}")
    return f"{base[:32]}:{'+'.join(extras)}"


def dedup_key(job: dict) -> str:
    """The in-flight coalescing identity of a job.

    Stricter than :func:`job_key`: *every* result-affecting field
    participates (``show`` changes the response's ``registers`` block,
    so two jobs may share a :func:`job_key` yet not a dedup key).
    Only ``deadline_s`` is excluded — a follower that tolerates a
    longer wait than the leader still gets the identical result.
    """
    import hashlib

    rendered = repr(sorted(
        (str(k), repr(v)) for k, v in job.items() if k != "deadline_s"
    ))
    return hashlib.sha256(rendered.encode()).hexdigest()


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
_WORKER_CACHE: CompileCache | None = None


def _worker_cache(cache_dir: str | None) -> CompileCache:
    """One compile cache per worker process, disk tier shared by all."""
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = CompileCache(disk_dir=cache_dir)
    return _WORKER_CACHE


def _int_map(raw: dict | None) -> dict[str, int]:
    return {str(k): int(v) for k, v in (raw or {}).items()}


def _chaos_kill(job: dict, attempt: int) -> None:
    chaos = job.get("chaos") or {}
    if attempt in (chaos.get("kill_on_attempts") or []):
        os.kill(os.getpid(), signal.SIGKILL)
    # A wedge *outside* the simulator: the in-run deadline cannot fire,
    # so only the supervisor's deadline kill can reclaim the worker.
    sleep_s = chaos.get("sleep_s")
    if sleep_s:
        time.sleep(float(sleep_s))


def _compile(job: dict, cache: CompileCache):
    from repro.registry import build_machine, get_language

    machine = build_machine(job.get("machine", "HM1"))
    options = dict(job.get("options") or {})
    result = get_language(job["lang"]).compile(
        job["source"], machine, cache=cache, **options
    )
    return machine, result


def _compile_response(job: dict, cache: CompileCache) -> dict:
    machine, result = _compile(job, cache)
    return {
        "machine": machine.name,
        "lang": job["lang"],
        "n_words": len(result.loaded),
        "word_bits": machine.control.width,
        "words": [
            {"address": w.address, "word": f"{w.word:x}"}
            for w in result.loaded.words
        ],
        "n_ops": result.composed.n_ops(),
        "compaction": round(result.composed.compaction_ratio(), 4),
        "mapping": dict(sorted(result.allocation.mapping.items())),
        "restart_hazards": [str(h) for h in result.restart_hazards],
        "warnings": [str(d) for d in result.warnings()],
    }


def _run_response(job: dict, cache: CompileCache, budget_s) -> dict:
    from repro.asm.loader import ControlStore
    from repro.sim.simulator import Simulator

    machine, result = _compile(job, cache)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(
        machine, store,
        engine=job.get("engine", "decoded"),
        deadline_s=budget_s,
    )
    mapping = result.allocation.mapping
    for name, value in _int_map(job.get("set")).items():
        simulator.state.write_reg(mapping.get(name, name), value)
    for address, value in _int_map(job.get("mem")).items():
        simulator.state.memory.load_words(int(address, 0)
                                          if isinstance(address, str)
                                          else int(address), [value])
    outcome = simulator.run(
        result.loaded.name, max_cycles=int(job.get("max_cycles", 1_000_000))
    )
    registers = {
        name: simulator.state.read_reg(mapping.get(name, name))
        for name in (job.get("show") or [])
    }
    return {
        "machine": machine.name,
        "lang": job["lang"],
        "exit_value": outcome.exit_value,
        "cycles": outcome.cycles,
        "instructions": outcome.instructions,
        "traps": outcome.traps,
        "interrupts": outcome.interrupts_serviced,
        "registers": dict(sorted(registers.items())),
    }


def _campaign_response(job: dict, cache: CompileCache, budget_s) -> dict:
    from repro.faults.campaign import run_campaign
    from repro.registry import build_machine

    machine = build_machine(job.get("machine", "HM1"))
    campaign = run_campaign(
        job["source"], job["lang"], machine,
        n=int(job.get("n", 25)),
        seed=int(job.get("seed", 7)),
        restart_safe=bool(job.get("restart_safe", False)),
        registers=_int_map(job.get("set")),
        memory={int(a): v for a, v in _int_map(job.get("mem")).items()},
        cache=cache,
        deadline_s=budget_s,
        collect_metrics=bool(job.get("metrics", False)),
    )
    payload = campaign.to_json()
    # The compile-cache telemetry family depends on how warm *this*
    # worker's cache happens to be — a crash-driven retry on a fresh
    # worker would legitimately differ.  The served result must be a
    # pure function of the request (the chaos suite asserts the bytes),
    # so the environment-dependent family is dropped; the worker's
    # cumulative cache stats still ride in the response's ``cache``
    # field.
    if isinstance(payload.get("metrics"), dict):
        payload["metrics"].pop("cache", None)
    return payload


def execute_job(job: dict, *, attempt: int = 0,
                budget_s: float | None = None,
                cache_dir: str | None = None) -> dict:
    """Run one job to a terminal structured response.

    ``budget_s`` is the request's remaining wall-clock allowance; it
    becomes ``Simulator.deadline_s`` for run/campaign work.  All
    toolkit errors come back as ``status="error"`` with the error's
    type and message; only genuine process death (which
    :func:`_chaos_kill` models) is left for the pool to observe.
    """
    _chaos_kill(job, attempt)
    cache = _worker_cache(cache_dir)
    op = job.get("op")
    try:
        if op == "compile":
            result = _compile_response(job, cache)
        elif op == "run":
            result = _run_response(job, cache, budget_s)
        elif op == "campaign":
            result = _campaign_response(job, cache, budget_s)
        else:
            return {
                "status": "error",
                "error": {"type": "BadRequest",
                          "message": f"unknown op {op!r}"},
            }
    except SimulationLimitError as error:
        if error.kind == "deadline":
            return {
                "status": "timeout",
                "where": "simulator",
                "error": {"type": type(error).__name__,
                          "kind": error.kind,
                          "limit": error.limit,
                          "message": str(error)},
            }
        return {
            "status": "error",
            "error": {"type": type(error).__name__, "kind": error.kind,
                      "limit": error.limit, "message": str(error)},
        }
    except ReproError as error:
        return {
            "status": "error",
            "error": {"type": type(error).__name__, "message": str(error)},
        }
    except Exception as error:  # defense: never crash the worker loop
        return {
            "status": "error",
            "error": {"type": type(error).__name__, "message": str(error)},
        }
    return {"status": "ok", "result": result, "cache": cache.stats.to_json()}
