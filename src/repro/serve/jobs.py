"""Job payloads and their in-worker execution.

A *job* is the picklable request a worker process executes: a plain
dict with an ``"op"`` (``compile`` / ``run`` / ``campaign``) plus the
operation's parameters.  :func:`execute_job` runs one job to a
*terminal structured response* — a JSON-ready dict whose ``status``
is ``ok``, ``timeout`` or ``error`` — and never lets an exception
escape (the pool treats an escaping worker as dead).  The ``result``
field of a response is a pure function of the job payload, which is
what lets the chaos suite assert byte-identical results across
crash-driven retries.

Deadline propagation ends here: the worker receives the request's
*remaining* wall-clock budget and hands it to
``Simulator.deadline_s``, so a microprogram that wedges produces a
typed ``SimulationLimitError`` and a structured ``timeout`` response
instead of holding the worker hostage.  (A worker stuck outside the
simulator — e.g. in a pathological compile — is the supervisor's
problem: it kills and respawns past the grace period.)

Chaos hooks: a job may carry ``{"chaos": {"kill_on_attempts": [...]}}``.
When the current dispatch attempt is listed, the worker SIGKILLs
itself *before* doing any work — a deterministic stand-in for
segfault/OOM death that the pool must detect, respawn and re-queue
around.  ``{"chaos": {"sleep_s": N}}`` wedges the worker outside the
simulator instead, exercising the supervisor's deadline kill.  The service only forwards the ``chaos`` field when booted
with ``enable_chaos`` (tests, CI smoke); production configs reject it.
"""

from __future__ import annotations

import os
import signal
import time

from repro.cache import CompileCache, compile_key
from repro.errors import ReproError, SimulationLimitError

#: Request classes, in shed order: under overload the service drops
#: campaign-class admissions first, compile-class last.
JOB_CLASSES = ("campaign", "run", "compile")


def job_key(job: dict) -> str:
    """The quarantine/backoff identity of a job.

    Two submissions of the same work share a key, so a poison request
    re-submitted verbatim hits its own open breaker.  For compile/run
    jobs this is the compile cache's content address (plus the run's
    input state); campaigns add their scenario envelope.  Jobs with
    unknown machines/languages fail later with a structured error, so
    the key falls back to a stable render of the payload.
    """
    import hashlib

    from repro.registry import build_machine

    try:
        machine = build_machine(job.get("machine", "HM1"))
        base = compile_key(
            job.get("source", ""), job.get("lang", ""), machine,
            job.get("options") or None,
        )
    except Exception:
        rendered = repr(sorted(job.items(), key=lambda kv: kv[0]))
        base = hashlib.sha256(rendered.encode()).hexdigest()
    extras = [job.get("op", "")]
    for fld in ("set", "mem", "n", "seed", "restart_safe", "max_cycles",
                "engine", "chaos"):
        if job.get(fld) is not None:
            extras.append(f"{fld}={job[fld]!r}")
    return f"{base[:32]}:{'+'.join(extras)}"


def dedup_key(job: dict) -> str:
    """The in-flight coalescing identity of a job.

    Stricter than :func:`job_key`: *every* result-affecting field
    participates (``show`` changes the response's ``registers`` block,
    so two jobs may share a :func:`job_key` yet not a dedup key).
    Only ``deadline_s`` is excluded — it never changes the pure
    result, and the service separately refuses to attach a follower
    whose budget the leader's remaining deadline cannot honour.

    Values render through :func:`repro.cache.canonical_value` (the
    same recursive canonicalisation compile keys use), so nested
    ``options``/``mem`` dicts that differ only in insertion order
    coalesce instead of silently missing each other.
    """
    import hashlib

    from repro.cache import canonical_value

    rendered = canonical_value({
        str(k): v for k, v in job.items() if k != "deadline_s"
    })
    return hashlib.sha256(rendered.encode()).hexdigest()


#: ``/run`` fields that may vary between the lanes of one batch: the
#: initial pokes become per-lane :class:`~repro.sim.batch.BatchCase`
#: state and ``show`` only shapes that lane's response rendering.
BATCH_LANE_FIELDS = ("set", "mem", "show")


def batch_refused(job: dict) -> str | None:
    """Why a job must run scalar in the pool — None when batchable.

    The serve-side mirror of :func:`repro.sim.batch.batch_refusal`'s
    admission discipline: anything that cannot share a lockstep lane
    without changing its response runs scalar, so batched responses
    stay byte-identical to serial execution.  An *explicit*
    ``deadline_s`` refuses batching because the lockstep driver does
    no per-lane wall-clock accounting — such a request keeps today's
    precise in-simulator deadline semantics; default-deadline traffic
    batches under the ``max_cycles`` budget with the supervisor's
    deadline kill as the backstop.
    """
    if job.get("op") != "run":
        return "op"
    if job.get("chaos"):
        return "chaos"
    if "deadline_s" in job:
        return "deadline"
    if job.get("engine", "decoded") != "decoded":
        return f"engine={job.get('engine')}"
    return None


def batch_group_key(job: dict) -> str:
    """The gather identity: lanes sharing it may run in lockstep.

    Everything that must be uniform across a batch participates —
    compile identity (source, lang, machine, options), engine and
    ``max_cycles`` — while the per-lane fields in
    :data:`BATCH_LANE_FIELDS` (and ``deadline_s``) are excluded, so a
    homogeneous-program flood with differing register pokes gathers
    into one lockstep dispatch.
    """
    import hashlib

    from repro.cache import canonical_value

    shared = {
        str(k): v for k, v in job.items()
        if k not in BATCH_LANE_FIELDS and k != "deadline_s"
    }
    return hashlib.sha256(canonical_value(shared).encode()).hexdigest()


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
_WORKER_CACHE: CompileCache | None = None


def _worker_cache(cache_dir: str | None) -> CompileCache:
    """One compile cache per worker process, disk tier shared by all."""
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = CompileCache(disk_dir=cache_dir)
    return _WORKER_CACHE


def reset_worker_cache() -> None:
    """Drop the per-process compile cache so the next job rebuilds it.

    Worker processes call this on startup: under the fork start method
    they inherit the parent's module globals, and if the parent ever ran
    :func:`execute_job` in-process (tests, embedding applications) the
    inherited cache would silently pin the parent's ``cache_dir`` instead
    of the pool's own.
    """
    global _WORKER_CACHE
    _WORKER_CACHE = None


def _int_map(raw: dict | None) -> dict[str, int]:
    return {str(k): int(v) for k, v in (raw or {}).items()}


def _chaos_kill(job: dict, attempt: int) -> None:
    chaos = job.get("chaos") or {}
    if attempt in (chaos.get("kill_on_attempts") or []):
        os.kill(os.getpid(), signal.SIGKILL)
    # A wedge *outside* the simulator: the in-run deadline cannot fire,
    # so only the supervisor's deadline kill can reclaim the worker.
    sleep_s = chaos.get("sleep_s")
    if sleep_s:
        time.sleep(float(sleep_s))


def _compile(job: dict, cache: CompileCache):
    from repro.registry import build_machine, get_language

    machine = build_machine(job.get("machine", "HM1"))
    options = dict(job.get("options") or {})
    result = get_language(job["lang"]).compile(
        job["source"], machine, cache=cache, **options
    )
    return machine, result


def _compile_response(job: dict, cache: CompileCache) -> dict:
    machine, result = _compile(job, cache)
    return {
        "machine": machine.name,
        "lang": job["lang"],
        "n_words": len(result.loaded),
        "word_bits": machine.control.width,
        "words": [
            {"address": w.address, "word": f"{w.word:x}"}
            for w in result.loaded.words
        ],
        "n_ops": result.composed.n_ops(),
        "compaction": round(result.composed.compaction_ratio(), 4),
        "mapping": dict(sorted(result.allocation.mapping.items())),
        "restart_hazards": [str(h) for h in result.restart_hazards],
        "warnings": [str(d) for d in result.warnings()],
    }


def _run_response(job: dict, cache: CompileCache, budget_s) -> dict:
    from repro.asm.loader import ControlStore
    from repro.sim.simulator import Simulator

    machine, result = _compile(job, cache)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(
        machine, store,
        engine=job.get("engine", "decoded"),
        deadline_s=budget_s,
    )
    mapping = result.allocation.mapping
    for name, value in _int_map(job.get("set")).items():
        simulator.state.write_reg(mapping.get(name, name), value)
    for address, value in _int_map(job.get("mem")).items():
        simulator.state.memory.load_words(int(address, 0)
                                          if isinstance(address, str)
                                          else int(address), [value])
    outcome = simulator.run(
        result.loaded.name, max_cycles=int(job.get("max_cycles", 1_000_000))
    )
    registers = {
        name: simulator.state.read_reg(mapping.get(name, name))
        for name in (job.get("show") or [])
    }
    return {
        "machine": machine.name,
        "lang": job["lang"],
        "exit_value": outcome.exit_value,
        "cycles": outcome.cycles,
        "instructions": outcome.instructions,
        "traps": outcome.traps,
        "interrupts": outcome.interrupts_serviced,
        "registers": dict(sorted(registers.items())),
    }


def _campaign_response(job: dict, cache: CompileCache, budget_s) -> dict:
    from repro.faults.campaign import run_campaign
    from repro.registry import build_machine

    machine = build_machine(job.get("machine", "HM1"))
    campaign = run_campaign(
        job["source"], job["lang"], machine,
        n=int(job.get("n", 25)),
        seed=int(job.get("seed", 7)),
        restart_safe=bool(job.get("restart_safe", False)),
        registers=_int_map(job.get("set")),
        memory={int(a): v for a, v in _int_map(job.get("mem")).items()},
        cache=cache,
        deadline_s=budget_s,
        collect_metrics=bool(job.get("metrics", False)),
    )
    payload = campaign.to_json()
    # The compile-cache telemetry family depends on how warm *this*
    # worker's cache happens to be — a crash-driven retry on a fresh
    # worker would legitimately differ.  The served result must be a
    # pure function of the request (the chaos suite asserts the bytes),
    # so the environment-dependent family is dropped; the worker's
    # cumulative cache stats still ride in the response's ``cache``
    # field.
    if isinstance(payload.get("metrics"), dict):
        payload["metrics"].pop("cache", None)
    return payload


def _error_response(error: BaseException) -> dict:
    """Map one toolkit exception to its terminal structured response.

    The single source of truth for scalar *and* batched execution —
    a lane whose scalar replay raises renders byte-identically to the
    same request executed alone.
    """
    if isinstance(error, SimulationLimitError):
        if error.kind == "deadline":
            return {
                "status": "timeout",
                "where": "simulator",
                "error": {"type": type(error).__name__,
                          "kind": error.kind,
                          "limit": error.limit,
                          "message": str(error)},
            }
        return {
            "status": "error",
            "error": {"type": type(error).__name__, "kind": error.kind,
                      "limit": error.limit, "message": str(error)},
        }
    if isinstance(error, ReproError):
        return {
            "status": "error",
            "error": {"type": type(error).__name__, "message": str(error)},
        }
    return {
        "status": "error",
        "error": {"type": type(error).__name__, "message": str(error)},
    }


def execute_job(job: dict, *, attempt: int = 0,
                budget_s: float | None = None,
                cache_dir: str | None = None) -> dict:
    """Run one job to a terminal structured response.

    ``budget_s`` is the request's remaining wall-clock allowance; it
    becomes ``Simulator.deadline_s`` for run/campaign work.  All
    toolkit errors come back as ``status="error"`` with the error's
    type and message; only genuine process death (which
    :func:`_chaos_kill` models) is left for the pool to observe.
    """
    _chaos_kill(job, attempt)
    cache = _worker_cache(cache_dir)
    op = job.get("op")
    try:
        if op == "compile":
            result = _compile_response(job, cache)
        elif op == "run":
            result = _run_response(job, cache, budget_s)
        elif op == "campaign":
            result = _campaign_response(job, cache, budget_s)
        else:
            return {
                "status": "error",
                "error": {"type": "BadRequest",
                          "message": f"unknown op {op!r}"},
            }
    except Exception as error:  # defense: never crash the worker loop
        return _error_response(error)
    return {"status": "ok", "result": result, "cache": cache.stats.to_json()}


# ----------------------------------------------------------------------
# Batched execution: one gathered lane group per lockstep dispatch
# ----------------------------------------------------------------------
def _lane_case(job: dict, mapping: dict):
    """One lane's initial state, mirroring :func:`_run_response`'s pokes."""
    from repro.sim.batch import BatchCase

    registers = {
        mapping.get(name, name): value
        for name, value in _int_map(job.get("set")).items()
    }
    memory = {
        (int(address, 0) if isinstance(address, str) else int(address)): value
        for address, value in _int_map(job.get("mem")).items()
    }
    return BatchCase(registers=registers, memory=memory)


def _lane_response(job: dict, machine, mapping, outcome, cache) -> dict:
    """Render one lane's outcome as :func:`_run_response` would."""
    from repro.errors import SimulationError

    if outcome.error is not None:
        return _error_response(outcome.error)
    run = outcome.result
    try:
        registers = {
            name: outcome.read_reg(mapping.get(name, name))
            for name in (job.get("show") or [])
        }
    except SimulationError as error:
        return _error_response(error)
    return {
        "status": "ok",
        "result": {
            "machine": machine.name,
            "lang": job["lang"],
            "exit_value": run.exit_value,
            "cycles": run.cycles,
            "instructions": run.instructions,
            "traps": run.traps,
            "interrupts": run.interrupts_serviced,
            "registers": dict(sorted(registers.items())),
        },
        "cache": cache.stats.to_json(),
    }


def execute_batch(entries, *, cache_dir: str | None = None
                  ) -> list[tuple[int, dict]]:
    """Run one gathered lane group; returns ``(ticket_id, response)``
    pairs aligned with ``entries`` (``(ticket_id, job, attempt,
    budget_s)`` tuples).

    All lanes share a :func:`batch_group_key`, so one compile serves
    the whole group and the lanes run through
    :func:`repro.sim.batch.run_cases` in lockstep — the S23 driver's
    divergence peel-off replays any lane the batch cannot carry on
    the scalar decoded engine, which is what keeps every response
    byte-identical to scalar execution, error text included.  If the
    batched path itself fails (a refused machine, an unexpected
    decode error), every lane falls back to scalar
    :func:`execute_job` — batching is an optimisation, never a new
    failure mode.
    """
    cache = _worker_cache(cache_dir)
    lead = entries[0][1]
    try:
        from repro.sim.batch import run_cases

        machine, result = _compile(lead, cache)
        mapping = result.allocation.mapping
        cases = [_lane_case(job, mapping) for _, job, _, _ in entries]
        outcomes = run_cases(
            machine, result.loaded, cases,
            batch=len(cases),
            engine=lead.get("engine", "decoded"),
            max_cycles=int(lead.get("max_cycles", 1_000_000)),
        )
    except Exception:
        return [
            (ticket_id,
             execute_job(job, attempt=attempt, budget_s=budget_s,
                         cache_dir=cache_dir))
            for ticket_id, job, attempt, budget_s in entries
        ]
    return [
        (ticket_id, _lane_response(job, machine, mapping, outcome, cache))
        for (ticket_id, job, _, _), outcome in zip(entries, outcomes)
    ]
