"""Hand-written reference microprograms.

The survey's quantitative claims compare compiler output against
microcode "written by an expert" (§2.2.4, §2.2.5, §3).  These builders
play the expert: they construct minimal micro-operation sequences
directly against machine registers — no compiler-inserted moves, ALU
results routed straight into MAR, flags reused where the hardware
allows — and are then packed with the optimal branch-and-bound
composer.  Machine irregularities an expert would also have to respect
(VAXm's missing inc, ALU destination classes) are applied by the same
legalization rules the compilers use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.assembler import LoadedProgram, assemble
from repro.asm.loader import ControlStore
from repro.compose.base import compose_program
from repro.compose.branch_bound import BranchBoundComposer
from repro.lang.common.legalize import legalize
from repro.machine.machine import MicroArchitecture
from repro.machine.registers import GPR
from repro.mir.block import Branch, Jump
from repro.mir.operands import Imm, Reg, preg
from repro.mir.ops import mop
from repro.mir.program import MicroProgram, ProgramBuilder
from repro.regalloc.linear_scan import LinearScanAllocator
from repro.sim.simulator import RunResult, Simulator


@dataclass
class HandProgram:
    """A hand-written program with its register interface."""

    name: str
    mir: MicroProgram
    inputs: dict[str, str]  # logical name -> physical register
    loaded: LoadedProgram | None = None

    def n_instructions(self) -> int:
        assert self.loaded is not None
        return len(self.loaded)


def _pool(machine: MicroArchitecture) -> list[str]:
    """Scratch registers an expert would use, best-suited first."""
    allocatable = [r.name for r in machine.registers.allocatable(GPR)]
    # Prefer non-macro-visible registers (trap-safe temporaries).
    allocatable.sort(key=lambda n: machine.registers[n].macro_visible)
    return allocatable


def hand_compile(
    hand: HandProgram, machine: MicroArchitecture
) -> HandProgram:
    """Legalize, optimally pack and assemble a hand-written program."""
    legalize(hand.mir, machine)
    if hand.mir.virtual_regs():
        LinearScanAllocator().allocate(hand.mir, machine)
    composed = compose_program(hand.mir, machine, BranchBoundComposer())
    hand.loaded = assemble(composed, machine)
    return hand


def run_hand(
    hand: HandProgram,
    machine: MicroArchitecture,
    inputs: dict[str, int],
    memory: dict[int, int] | None = None,
    max_cycles: int = 1_000_000,
) -> tuple[RunResult, Simulator]:
    """Load and execute a hand program with logical inputs."""
    assert hand.loaded is not None
    store = ControlStore(machine)
    store.load(hand.loaded)
    simulator = Simulator(machine, store)
    for address, value in (memory or {}).items():
        simulator.state.memory.load_words(address, [value])
    for logical, value in inputs.items():
        simulator.state.write_reg(hand.inputs[logical], value)
    return simulator.run(hand.name, max_cycles=max_cycles), simulator


# ---------------------------------------------------------------------------
# The builders.  Each returns an unassembled HandProgram.
# ---------------------------------------------------------------------------
def hand_translit(machine: MicroArchitecture) -> HandProgram:
    """Transliteration with the table lookup fused into MAR."""
    pool = _pool(machine)
    string, table = pool[0], pool[1]
    builder = ProgramBuilder("translit", machine)
    mar, mbr = preg("MAR"), preg("MBR")
    builder.start_block("loop")
    builder.emit(mop("mov", mar, preg(string)))
    builder.emit(mop("read", mbr, mar))
    builder.emit(mop("cmp", None, mbr, _zero(machine)))
    builder.terminate(Branch("Z", "out", "body"))
    builder.start_block("body")
    # Expert trick: the ALU writes the table address straight into MAR.
    builder.emit(mop("add", mar, mbr, preg(table)))
    builder.emit(mop("read", mbr, mar))
    builder.emit(mop("mov", mar, preg(string)))
    builder.emit(mop("write", None, mar, mbr))
    builder.emit(mop("inc", preg(string), preg(string)))
    builder.terminate(Jump("loop"))
    builder.start_block("out")
    builder.exit()
    return HandProgram("translit", builder.finish(),
                       {"str": string, "tbl": table})


def hand_memcpy(machine: MicroArchitecture) -> HandProgram:
    pool = _pool(machine)
    src, dst, count = pool[0], pool[1], pool[2]
    builder = ProgramBuilder("memcpy", machine)
    mar, mbr = preg("MAR"), preg("MBR")
    builder.start_block("loop")
    builder.emit(mop("cmp", None, preg(count), _zero(machine)))
    builder.terminate(Branch("Z", "out", "body"))
    builder.start_block("body")
    builder.emit(mop("mov", mar, preg(src)))
    builder.emit(mop("read", mbr, mar))
    builder.emit(mop("mov", mar, preg(dst)))
    builder.emit(mop("write", None, mar, mbr))
    builder.emit(mop("inc", preg(src), preg(src)))
    builder.emit(mop("inc", preg(dst), preg(dst)))
    builder.emit(mop("dec", preg(count), preg(count)))
    builder.terminate(Jump("loop"))
    builder.start_block("out")
    builder.exit()
    return HandProgram("memcpy", builder.finish(),
                       {"src": src, "dst": dst, "n": count})


def hand_checksum(machine: MicroArchitecture) -> HandProgram:
    pool = _pool(machine)
    base, count, total = pool[0], pool[1], pool[2]
    builder = ProgramBuilder("checksum", machine)
    mar, mbr = preg("MAR"), preg("MBR")
    builder.start_block("entry")
    builder.emit(mop("movi", preg(total), Imm(0)))
    builder.terminate(Jump("loop"))
    builder.start_block("loop")
    builder.emit(mop("cmp", None, preg(count), _zero(machine)))
    builder.terminate(Branch("Z", "out", "body"))
    builder.start_block("body")
    builder.emit(mop("mov", mar, preg(base)))
    builder.emit(mop("read", mbr, mar))
    builder.emit(mop("xor", preg(total), preg(total), mbr))
    builder.emit(mop("inc", preg(base), preg(base)))
    builder.emit(mop("dec", preg(count), preg(count)))
    builder.terminate(Jump("loop"))
    builder.start_block("out")
    builder.exit(preg(total))
    return HandProgram("checksum", builder.finish(),
                       {"base": base, "n": count, "sum": total})


def hand_bitcount(machine: MicroArchitecture) -> HandProgram:
    pool = _pool(machine)
    value, count, bit = pool[0], pool[1], pool[2]
    builder = ProgramBuilder("bitcount", machine)
    builder.start_block("entry")
    builder.emit(mop("movi", preg(count), Imm(0)))
    builder.terminate(Jump("loop"))
    builder.start_block("loop")
    builder.emit(mop("cmp", None, preg(value), _zero(machine)))
    builder.terminate(Branch("Z", "out", "body"))
    builder.start_block("body")
    one = _one(machine)
    builder.emit(mop("and", preg(bit), preg(value), one))
    builder.emit(mop("add", preg(count), preg(count), preg(bit)))
    # Expert trick on machines with a UF flag: shift and test the bit
    # that falls out — here we keep the portable and/add form but the
    # shift is shared between the masking and the loop advance.
    builder.emit(mop("shr", preg(value), preg(value), Imm(1)))
    builder.terminate(Jump("loop"))
    builder.start_block("out")
    builder.exit(preg(count))
    return HandProgram("bitcount", builder.finish(),
                       {"x": value, "count": count})


def hand_strcmp(machine: MicroArchitecture) -> HandProgram:
    pool = _pool(machine)
    a, b, diff = pool[0], pool[1], pool[2]
    builder = ProgramBuilder("strcmp", machine)
    mar, mbr = preg("MAR"), preg("MBR")
    builder.start_block("loop")
    builder.emit(mop("mov", mar, preg(a)))
    builder.emit(mop("read", mbr, mar))
    builder.emit(mop("mov", preg(diff), mbr))
    builder.emit(mop("mov", mar, preg(b)))
    builder.emit(mop("read", mbr, mar))
    # sub sets Z directly: no separate cmp needed (flag reuse).
    builder.emit(mop("sub", preg(diff), preg(diff), mbr))
    builder.terminate(Branch("NZ", "notequal", "same"))
    builder.start_block("same")
    builder.emit(mop("cmp", None, mbr, _zero(machine)))
    builder.terminate(Branch("Z", "equal", "advance"))
    builder.start_block("advance")
    builder.emit(mop("inc", preg(a), preg(a)))
    builder.emit(mop("inc", preg(b), preg(b)))
    builder.terminate(Jump("loop"))
    builder.start_block("equal")
    builder.emit(mop("movi", preg(diff), Imm(0)))
    builder.exit(preg(diff))
    builder.start_block("notequal")
    builder.emit(mop("movi", preg(diff), Imm(1)))
    builder.exit(preg(diff))
    return HandProgram("strcmp", builder.finish(),
                       {"a": a, "b": b, "res": diff})


def hand_fib(machine: MicroArchitecture) -> HandProgram:
    pool = _pool(machine)
    n, x, y, t = pool[0], pool[1], pool[2], pool[3]
    builder = ProgramBuilder("fib", machine)
    builder.start_block("entry")
    builder.emit(mop("movi", preg(x), Imm(0)))
    builder.emit(mop("movi", preg(y), Imm(1)))
    builder.terminate(Jump("loop"))
    builder.start_block("loop")
    builder.emit(mop("cmp", None, preg(n), _zero(machine)))
    builder.terminate(Branch("Z", "out", "body"))
    builder.start_block("body")
    builder.emit(mop("add", preg(t), preg(x), preg(y)))
    builder.emit(mop("mov", preg(x), preg(y)))
    builder.emit(mop("mov", preg(y), preg(t)))
    builder.emit(mop("dec", preg(n), preg(n)))
    builder.terminate(Jump("loop"))
    builder.start_block("out")
    builder.exit(preg(x))
    return HandProgram("fib", builder.finish(), {"n": n, "a": x})


#: name -> builder, aligned with repro.bench.programs.CORPUS.
HAND_CORPUS = {
    "translit": hand_translit,
    "memcpy": hand_memcpy,
    "checksum": hand_checksum,
    "bitcount": hand_bitcount,
    "strcmp": hand_strcmp,
    "fib": hand_fib,
}


def _zero(machine: MicroArchitecture) -> Reg:
    for name in ("ZERO", "R0"):
        if name in machine.registers:
            return preg(name)
    raise ValueError(f"{machine.name} has no zero register")


def _one(machine: MicroArchitecture) -> Reg:
    return preg("ONE")
