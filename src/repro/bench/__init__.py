"""Benchmark substrate (S14): workloads, corpus, hand-written
references, the macro system for E10, and table rendering."""

from repro.bench.handwritten import (
    HAND_CORPUS,
    HandProgram,
    hand_compile,
    run_hand,
)
from repro.bench.macrosys import (
    INTERPRETER,
    MacroSystem,
    OPCODES,
    assemble_macro,
    build_macro_system,
)
from repro.bench.programs import (
    CORPUS,
    ProgramRun,
    compile_program,
    run_program,
)
from repro.bench.reporting import (
    compare_throughput,
    render_regression,
    render_table,
)
from repro.bench.workloads import random_block, random_program

__all__ = [
    "CORPUS",
    "HAND_CORPUS",
    "HandProgram",
    "INTERPRETER",
    "MacroSystem",
    "OPCODES",
    "ProgramRun",
    "assemble_macro",
    "build_macro_system",
    "compare_throughput",
    "compile_program",
    "hand_compile",
    "random_block",
    "random_program",
    "render_regression",
    "render_table",
    "run_hand",
    "run_program",
]
