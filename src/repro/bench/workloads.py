"""Synthetic workload generation for the benchmark harnesses.

``random_block`` produces straight-line micro-operation sequences with
controllable dependence density — the workload family over which the
composition-algorithm comparison (E7) and the allocation/composition
interaction study (E14) sweep.  Generation is deterministic per seed.
"""

from __future__ import annotations

import random

from repro.machine.machine import MicroArchitecture
from repro.machine.registers import GPR
from repro.mir.block import BasicBlock, Jump
from repro.mir.operands import Imm, Reg, preg, vreg
from repro.mir.ops import MicroOp, mop
from repro.mir.program import MicroProgram, ProgramBuilder

#: Op mix used by the generators: (name, n_reg_srcs, has_imm_count).
_OP_MIX = [
    ("add", 2, False), ("sub", 2, False), ("and", 2, False),
    ("or", 2, False), ("xor", 2, False), ("mov", 1, False),
    ("inc", 1, False), ("dec", 1, False), ("not", 1, False),
    ("shl", 1, True), ("shr", 1, True),
]


def _supported_mix(
    machine: MicroArchitecture,
    op_mix: list[tuple[str, int, bool]] | None,
) -> list[tuple[str, int, bool]]:
    """The subset of the op mix the machine implements.

    Raises instead of silently returning an empty mix — an empty pool
    used to surface only later as an opaque ``rng.choice`` crash on
    machines supporting none of the default ops.
    """
    mix = _OP_MIX if op_mix is None else list(op_mix)
    supported = [entry for entry in mix if machine.has_op(entry[0])]
    if not supported:
        requested = ", ".join(entry[0] for entry in mix)
        raise ValueError(
            f"machine {machine.name!r} supports none of the workload "
            f"op mix ({requested}); pass op_mix= with micro-operations "
            f"the machine implements"
        )
    return supported


def random_block(
    machine: MicroArchitecture,
    n_ops: int,
    seed: int = 0,
    reuse: float = 0.5,
    registers: list[str] | None = None,
    virtual: bool = False,
    label: str = "blk",
    op_mix: list[tuple[str, int, bool]] | None = None,
) -> BasicBlock:
    """A random straight-line block.

    ``reuse`` in [0, 1] controls dependence density: the probability a
    source operand picks an already-written register rather than a
    fresh/random one.  Higher reuse → longer dependence chains → less
    exploitable parallelism.  ``op_mix`` overrides the default op pool
    with explicit ``(name, n_reg_srcs, has_imm_count)`` entries.
    """
    rng = random.Random(seed)
    if registers is None:
        if virtual:
            registers = [f"v{i}" for i in range(max(8, n_ops // 2))]
        else:
            registers = [r.name for r in machine.registers.allocatable(GPR)]
    make = (lambda n: vreg(n)) if virtual else (lambda n: preg(n))
    ops_supported = _supported_mix(machine, op_mix)
    block = BasicBlock(label)
    written: list[str] = []
    for _ in range(n_ops):
        name, n_srcs, has_count = rng.choice(ops_supported)
        srcs: list = []
        for _ in range(n_srcs):
            if written and rng.random() < reuse:
                srcs.append(make(rng.choice(written[-4:])))
            else:
                srcs.append(make(rng.choice(registers)))
        if has_count:
            srcs.append(Imm(rng.randint(1, 3)))
        dest = make(rng.choice(registers))
        block.ops.append(MicroOp(name, dest, tuple(srcs)))
        written.append(dest.name)
    block.terminate(Jump(label))
    return block


def random_program(
    machine: MicroArchitecture,
    n_blocks: int,
    ops_per_block: int,
    seed: int = 0,
    reuse: float = 0.5,
    virtual: bool = True,
    n_variables: int | None = None,
    op_mix: list[tuple[str, int, bool]] | None = None,
) -> MicroProgram:
    """A random multi-block program over symbolic variables.

    Used by the register-pressure sweep (E8): ``n_variables`` controls
    pressure directly.  ``op_mix`` overrides the default op pool.
    """
    rng = random.Random(seed)
    builder = ProgramBuilder(f"rand{seed}", machine)
    names = [f"v{i}" for i in range(n_variables or ops_per_block)]
    make = (lambda n: vreg(n)) if virtual else (lambda n: preg(n))
    ops_supported = _supported_mix(machine, op_mix)

    builder.start_block("entry")
    # Give every variable an initial value so liveness is total.
    for name in names:
        builder.emit(mop("movi", make(name), Imm(rng.randint(0, 255))))
    for index in range(n_blocks):
        builder.start_block(f"b{index}")
        written: list[str] = []
        for _ in range(ops_per_block):
            op_name, n_srcs, has_count = rng.choice(ops_supported)
            srcs: list = []
            for _ in range(n_srcs):
                pool = written[-4:] if written and rng.random() < reuse else names
                srcs.append(make(rng.choice(pool)))
            if has_count:
                srcs.append(Imm(rng.randint(1, 3)))
            dest_name = rng.choice(names)
            builder.emit(MicroOp(op_name, make(dest_name), tuple(srcs)))
            written.append(dest_name)
    # Fold everything into one live result so nothing is dead.
    builder.start_block("fold")
    accumulator = make(names[0])
    for name in names[1:]:
        builder.emit(mop("xor", accumulator, accumulator, make(name)))
    builder.exit(accumulator)
    return builder.finish()
