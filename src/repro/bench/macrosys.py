"""A macroarchitecture realized in microcode (experiment E10).

"Traditionally, microprogramming has been used for the realization of
macroarchitectures" (§1) — and the survey's conclusion weighs a user's
5× speedup from compiled microcode against an expert's 10×, both over
*interpreted macrocode*.  This module supplies the macro side of that
comparison:

* **M1**, a 16-bit accumulator macro-ISA (LDA/STA/LDI/ADD/SUB/AND/JMP/
  JZ/HALT), with a tiny assembler;
* a **microcoded M1 interpreter written in YALLL** (the fetch–decode–
  execute loop dispatching through the multiway mask branch), compiled
  like any other user microprogram and loaded into the control store.

Running an M1 program through the interpreter, against running the
equivalent algorithm as compiled or hand-written microcode, yields the
survey's three-way comparison on identical simulated hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.loader import ControlStore
from repro.errors import ReproError
from repro.lang.yalll.compiler import compile_yalll
from repro.pipeline.result import CompileResult
from repro.machine.machine import MicroArchitecture
from repro.sim.simulator import RunResult, Simulator

#: M1 opcodes (4 bits) — operand in the low 12 bits.
OPCODES = {
    "HALT": 0x0,
    "LDA": 0x1,   # acc := M[addr]
    "STA": 0x2,   # M[addr] := acc
    "LDI": 0x3,   # acc := imm
    "ADD": 0x4,   # acc += M[addr]
    "SUB": 0x5,   # acc -= M[addr]
    "AND": 0x6,   # acc &= M[addr]
    "JMP": 0x7,   # pc := addr
    "JZ": 0x8,    # if acc = 0 then pc := addr
}


def assemble_macro(
    source: str, base: int = 0
) -> tuple[list[int], dict[str, int]]:
    """Assemble M1 assembly into memory words loaded at ``base``.

    Two passes over ``label:``-prefixed lines; ``.word n`` emits data.
    Symbolic operands resolve to absolute addresses (``base`` applied).
    Returns (words, absolute symbol table).
    """
    lines = []
    for raw in source.splitlines():
        line = raw.split(";")[0].strip()
        if line:
            lines.append(line)
    symbols: dict[str, int] = {}
    address = 0
    for line in lines:
        while ":" in line:
            label, line = line.split(":", 1)
            symbols[label.strip()] = address
            line = line.strip()
        if line:
            address += 1
    words: list[int] = []
    for line in lines:
        while ":" in line:
            _, line = line.split(":", 1)
            line = line.strip()
        if not line:
            continue
        parts = line.split()
        mnemonic = parts[0].upper()
        if mnemonic == ".WORD":
            words.append(int(parts[1], 0) & 0xFFFF)
            continue
        if mnemonic not in OPCODES:
            raise ReproError(f"unknown M1 mnemonic {mnemonic!r}")
        operand = 0
        if len(parts) > 1:
            token = parts[1]
            if token in symbols:
                operand = base + symbols[token]
            else:
                operand = int(token, 0)
        words.append((OPCODES[mnemonic] << 12) | (operand & 0xFFF))
    return words, symbols


#: The microcoded M1 interpreter, in YALLL.  ``pc`` starts at the
#: program's load address; ``acc`` is the macro accumulator.
INTERPRETER = """
; M1 macro-ISA interpreter (fetch - decode - execute)
fetch:
    load inst,pc
    add  pc,pc,1
    shr  op,inst,12
    and  arg,inst,0x0FFF
    mjump op (0000 -> halt, 0001 -> lda, 0010 -> sta, 0011 -> ldi,
              0100 -> addm, 0101 -> subm, 0110 -> andm, 0111 -> jmp,
              1000 -> jz, default -> halt)
lda:
    load acc,arg
    jump fetch
sta:
    stor acc,arg
    jump fetch
ldi:
    move acc,arg
    jump fetch
addm:
    load w,arg
    add  acc,acc,w
    jump fetch
subm:
    load w,arg
    sub  acc,acc,w
    jump fetch
andm:
    load w,arg
    and  acc,acc,w
    jump fetch
jmp:
    move pc,arg
    jump fetch
jz:
    jump fetch if acc # 0
    move pc,arg
    jump fetch
halt:
    exit acc
"""


@dataclass
class MacroSystem:
    """A machine with the M1 interpreter resident in its control store."""

    machine: MicroArchitecture
    interpreter: CompileResult
    simulator: Simulator

    def load_macro(self, source: str, base: int = 0x100) -> dict[str, int]:
        """Assemble and load an M1 program at ``base``."""
        words, symbols = assemble_macro(source, base)
        self.simulator.state.memory.load_words(base, words)
        return {name: base + offset for name, offset in symbols.items()}

    def _register(self, variable: str) -> str:
        """Physical register of an interpreter variable.

        Variables whose names coincide with machine registers (e.g.
        ``acc`` on HM1) resolve directly and never reach the allocator.
        """
        mapping = self.interpreter.allocation.mapping
        if variable in mapping:
            return mapping[variable]
        for name in self.machine.registers.names():
            if name.lower() == variable.lower():
                return name
        raise ReproError(f"interpreter variable {variable!r} not found")

    def run_macro(
        self, entry: int, max_cycles: int = 2_000_000
    ) -> RunResult:
        """Interpret the macro program starting at ``entry``."""
        self.simulator.state.write_reg(self._register("pc"), entry)
        self.simulator.state.write_reg(self._register("acc"), 0)
        return self.simulator.run("m1-interp", max_cycles=max_cycles)

    @property
    def accumulator(self) -> int:
        return self.simulator.state.read_reg(self._register("acc"))


def build_macro_system(machine: MicroArchitecture) -> MacroSystem:
    """Compile the interpreter and install it on a machine.

    Requires a machine with a hardware multiway branch (HM1, HP300m) —
    exactly the feature YALLL's mask branch was designed for.
    """
    result = compile_yalll(INTERPRETER, machine, name="m1-interp")
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    return MacroSystem(machine, result, simulator)
