"""Plain-text table rendering and perf-regression gating for benches.

Every benchmark prints the rows the corresponding part of the survey
reports, in a uniform aligned format, so EXPERIMENTS.md can quote them
verbatim.

:func:`compare_throughput` gates a fresh ``bench_sim_throughput``
payload against the committed ``BENCH_sim.json`` baseline: each
(engine, workload) cell's MI/s must stay above ``floor`` times the
baseline rate.  Wall-clock rates vary across hosts, so the floor is
deliberately loose and CI runs the gate in report-only mode; the gate
exists to catch order-of-magnitude slips (a de-optimised hot loop),
not single-digit noise.
"""

from __future__ import annotations


def render_table(
    headers: list[str], rows: list[list[object]], title: str = ""
) -> str:
    """Aligned text table; numeric cells are right-justified."""
    cells = [[_format(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]

    def line(parts: list[str], row: list[object] | None = None) -> str:
        rendered = []
        for i, part in enumerate(parts):
            numeric = row is not None and isinstance(row[i], (int, float))
            rendered.append(
                part.rjust(widths[i]) if numeric else part.ljust(widths[i])
            )
        return "  ".join(rendered).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    for row, rendered in zip(rows, cells):
        out.append(line(rendered, row))
    return "\n".join(out)


def _format(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


# ----------------------------------------------------------------------
# Perf-regression gate
# ----------------------------------------------------------------------
def _throughput_cells(payload: dict) -> dict[tuple[str, str], float]:
    """(engine, workload) -> MI/s from a bench_sim_throughput payload."""
    return {
        (row["engine"], row["workload"]): float(row["mi_per_s"])
        for row in payload.get("results", [])
    }


def compare_throughput(
    fresh: dict, baseline: dict, *, floor: float = 0.7
) -> dict:
    """Gate a fresh throughput payload against a committed baseline.

    Each (engine, workload) cell present in *both* payloads is scored
    as ``fresh MI/s / baseline MI/s``; a cell regresses when its ratio
    drops below ``floor``.  Cells only one side has are reported but
    never fail the gate (a new workload has no baseline yet).  Returns
    a deterministic dict::

        {"floor": float, "passed": bool, "worst_ratio": float | None,
         "cells": [{"engine", "workload", "fresh", "baseline",
                    "ratio", "ok"}, ...],
         "unmatched": [...]}
    """
    fresh_cells = _throughput_cells(fresh)
    base_cells = _throughput_cells(baseline)
    cells = []
    for key in sorted(fresh_cells.keys() & base_cells.keys()):
        engine, workload = key
        base = base_cells[key]
        ratio = round(fresh_cells[key] / base, 3) if base else None
        cells.append({
            "engine": engine,
            "workload": workload,
            "fresh": fresh_cells[key],
            "baseline": base,
            "ratio": ratio,
            "ok": ratio is None or ratio >= floor,
        })
    unmatched = sorted(
        f"{engine}/{workload}"
        for engine, workload in fresh_cells.keys() ^ base_cells.keys()
    )
    ratios = [c["ratio"] for c in cells if c["ratio"] is not None]
    return {
        "floor": floor,
        "passed": all(c["ok"] for c in cells),
        "worst_ratio": min(ratios) if ratios else None,
        "cells": cells,
        "unmatched": unmatched,
    }


def render_regression(check: dict) -> str:
    """Human-readable verdict for a :func:`compare_throughput` result."""
    verdict = "PASS" if check["passed"] else "REGRESSION"
    table = render_table(
        ["engine", "workload", "baseline MI/s", "fresh MI/s",
         "ratio", "ok"],
        [
            [c["engine"], c["workload"], f"{c['baseline']:,.0f}",
             f"{c['fresh']:,.0f}",
             "n/a" if c["ratio"] is None else f"{c['ratio']:.3f}",
             "ok" if c["ok"] else "REGRESSED"]
            for c in check["cells"]
        ],
        title=f"throughput regression gate: {verdict} "
              f"(floor {check['floor']:.2f}, worst ratio "
              + ("n/a" if check["worst_ratio"] is None
                 else f"{check['worst_ratio']:.3f}")
              + ")",
    )
    if check["unmatched"]:
        table += "\nno baseline for: " + ", ".join(check["unmatched"])
    return table
