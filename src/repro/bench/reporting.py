"""Plain-text table rendering for benchmark harnesses.

Every benchmark prints the rows the corresponding part of the survey
reports, in a uniform aligned format, so EXPERIMENTS.md can quote them
verbatim.
"""

from __future__ import annotations


def render_table(
    headers: list[str], rows: list[list[object]], title: str = ""
) -> str:
    """Aligned text table; numeric cells are right-justified."""
    cells = [[_format(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]

    def line(parts: list[str], row: list[object] | None = None) -> str:
        rendered = []
        for i, part in enumerate(parts):
            numeric = row is not None and isinstance(row[i], (int, float))
            rendered.append(
                part.rjust(widths[i]) if numeric else part.ljust(widths[i])
            )
        return "  ".join(rendered).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    for row, rendered in zip(rows, cells):
        out.append(line(rendered, row))
    return "\n".join(out)


def _format(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
