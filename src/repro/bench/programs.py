"""The benchmark program corpus, written in YALLL.

Six small programs of the kind the survey's evaluation era used
(string transliteration is §2.2.4's own example).  Variables are
symbolic — the allocator binds them per machine — so one source runs
on every machine description; helper functions compile, load and run a
program and fetch results through the allocation map.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.loader import ControlStore
from repro.machine.machine import MicroArchitecture
from repro.pipeline.result import CompileResult
from repro.registry import get_language
from repro.sim.simulator import RunResult, Simulator

#: §2.2.4's transliteration program, with symbolic registers.
TRANSLIT = """
; transliterate the string at 'str' through the table at 'tbl'
loop:
    load char,str
    jump out if char = 0
    add  mar,char,tbl
    load char,mar
    stor char,str
    add  str,str,1
    jump loop
out: exit
"""

#: Copy n words from src to dst.
MEMCPY = """
loop:
    jump out if n = 0
    load w,src
    stor w,dst
    add  src,src,1
    add  dst,dst,1
    sub  n,n,1
    jump loop
out: exit
"""

#: XOR checksum of n words at base.
CHECKSUM = """
    put  sum,0
loop:
    jump out if n = 0
    load w,base
    xor  sum,sum,w
    add  base,base,1
    sub  n,n,1
    jump loop
out: exit sum
"""

#: Population count of the value in x.
BITCOUNT = """
    put count,0
loop:
    jump out if x = 0
    and  bit,x,1
    add  count,count,bit
    shr  x,x,1
    jump loop
out: exit count
"""

#: Compare zero-terminated strings at a and b; exits 0 if equal, 1 if not.
STRCMP = """
loop:
    load ca,a
    load cb,b
    sub  d,ca,cb
    jump notequal if d # 0
    jump equal if ca = 0
    add  a,a,1
    add  b,b,1
    jump loop
equal:
    put res,0
    exit res
notequal:
    put res,1
    exit res
"""

#: Iterative Fibonacci of n (n small).
FIB = """
    put a,0
    put b,1
loop:
    jump out if n = 0
    add t,a,b
    move a,b
    move b,t
    sub n,n,1
    jump loop
out: exit a
"""

#: name -> (source, input variable names, memory-touching?)
CORPUS: dict[str, tuple[str, tuple[str, ...]]] = {
    "translit": (TRANSLIT, ("str", "tbl")),
    "memcpy": (MEMCPY, ("src", "dst", "n")),
    "checksum": (CHECKSUM, ("base", "n")),
    "bitcount": (BITCOUNT, ("x",)),
    "strcmp": (STRCMP, ("a", "b")),
    "fib": (FIB, ("n",)),
}


@dataclass
class ProgramRun:
    """A compiled-and-executed corpus program."""

    compile_result: CompileResult
    run_result: RunResult
    simulator: Simulator

    def variable(self, name: str) -> int:
        """Read a symbolic variable's final value."""
        mapping = self.compile_result.allocation.mapping
        if name in mapping:
            return self.simulator.state.read_reg(mapping[name])
        slots = self.compile_result.allocation.spilled_slots
        if name in slots:
            return self.simulator.state.scratchpad.read(slots[name])
        return self.simulator.state.read_reg(name)


def compile_program(
    name: str,
    machine: MicroArchitecture,
    *,
    optimize: bool = True,
) -> CompileResult:
    """Compile a corpus program by name."""
    source, _inputs = CORPUS[name]
    return get_language("yalll").compile(
        source, machine, name=name, optimize=optimize
    )


def run_program(
    name: str,
    machine: MicroArchitecture,
    inputs: dict[str, int],
    *,
    optimize: bool = True,
    memory: dict[int, int] | None = None,
    max_cycles: int = 1_000_000,
    compiled: CompileResult | None = None,
) -> ProgramRun:
    """Compile, load and run a corpus program."""
    result = compiled or compile_program(name, machine, optimize=optimize)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    for address, value in (memory or {}).items():
        simulator.state.memory.load_words(address, [value])
    mapping = result.allocation.mapping
    slots = result.allocation.spilled_slots
    for variable, value in inputs.items():
        if variable in mapping:
            simulator.state.write_reg(mapping[variable], value)
        elif variable in slots:
            simulator.state.scratchpad.write(slots[variable], value)
        else:
            simulator.state.write_reg(variable, value)
    run = simulator.run(name, max_cycles=max_cycles)
    return ProgramRun(result, run, simulator)
