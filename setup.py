"""Setup shim: enables legacy editable installs where the `wheel`
package is unavailable (pip falls back to `setup.py develop`)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Microprogramming language toolkit reproducing Sint (1980), "
        "'A survey of high level microprogramming languages'"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
