"""The same algorithm in all four surveyed languages.

Multiplication by repeated addition — the survey's running example —
written in SIMPL (§2.2.1), EMPL (§2.2.2), S* (§2.2.3) and YALLL
(§2.2.4), each compiled by its own front end for HM1 and executed.
The table at the end shows how the four designs trade convenience,
portability and code quality.

Run:  python examples/four_languages.py
"""

from repro import (
    ControlStore,
    Simulator,
    compile_empl,
    compile_simpl,
    compile_sstar,
    compile_yalll,
    get_machine,
)
from repro.bench import render_table

SIMPL_SOURCE = """
program mul;
begin
    R0 -> R3;
    while R2 # 0 do
    begin
        R3 + R1 -> R3;
        R2 - ONE -> R2;
    end;
end
"""

EMPL_SOURCE = """
DECLARE A FIXED;
DECLARE B FIXED;
DECLARE P FIXED;
A = 6;
B = 7;
P = A * B;
"""

SSTAR_SOURCE = """
program mul;
var a : seq [15..0] bit bind R1;
var n : seq [15..0] bit bind R2;
var p : seq [15..0] bit bind R3;
begin
  p := 0;
  while n <> 0 do
  begin
    p := p + a;
    n := n - 1
  end
end
"""

YALLL_SOURCE = """
    put p,0
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""


def run(machine, loaded, setup):
    store = ControlStore(machine)
    store.load(loaded)
    simulator = Simulator(machine, store)
    setup(simulator)
    outcome = simulator.run(loaded.name)
    return simulator, outcome


def main() -> None:
    machine = get_machine("HM1")
    rows = []

    simpl = compile_simpl(SIMPL_SOURCE, machine)
    simulator, outcome = run(machine, simpl.loaded, lambda s: (
        s.state.write_reg("R1", 6), s.state.write_reg("R2", 7)))
    rows.append(["SIMPL", "registers", "compiler (linear)",
                 len(simpl.loaded), outcome.cycles,
                 simulator.state.read_reg("R3")])

    empl = compile_empl(EMPL_SOURCE, machine, name="emul")
    simulator, outcome = run(machine, empl.loaded, lambda s: None)
    product = simulator.state.read_reg(empl.allocation.mapping["g_P"])
    rows.append(["EMPL", "symbolic", "compiler (list)",
                 len(empl.loaded), outcome.cycles, product])

    sstar = compile_sstar(SSTAR_SOURCE, machine)
    simulator, outcome = run(machine, sstar.loaded, lambda s: (
        s.state.write_reg("R1", 6), s.state.write_reg("R2", 7)))
    rows.append(["S*", "bound registers", "programmer",
                 len(sstar.loaded), outcome.cycles,
                 simulator.state.read_reg("R3")])

    yalll = compile_yalll(YALLL_SOURCE, machine, name="ymul")
    mapping = yalll.allocation.mapping
    simulator, outcome = run(machine, yalll.loaded, lambda s: (
        s.state.write_reg(mapping["a"], 6),
        s.state.write_reg(mapping["n"], 7)))
    rows.append(["YALLL", "symbolic", "compiler (list)",
                 len(yalll.loaded), outcome.cycles, outcome.exit_value])

    print(render_table(
        ["language", "variables", "composition", "words", "cycles",
         "6 x 7 ="],
        rows,
        title="One algorithm, four surveyed languages, one machine (HM1)",
    ))
    assert all(row[-1] == 42 for row in rows)


if __name__ == "__main__":
    main()
