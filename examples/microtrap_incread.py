"""The survey's §2.1.5 ``incread`` microtrap bug, live.

    program incread(n)
    begin reg[n] := reg[n]+1; mbr := readmem(reg[n]) end

On a machine whose reg[n] is part of the macroarchitecture (VAXm's
R0–R3), a pagefault in the memory fetch restarts the microprogram
with the incremented value preserved — and the restart increments it
again.  This script reproduces the bug, then applies the compiler's
restart-safety transform and shows the fix.

Run:  python examples/microtrap_incread.py
"""

from repro import ControlStore, Simulator, get_machine
from repro.asm import assemble
from repro.compose import SequentialComposer, compose_program
from repro.lang.common.restart import analyze_restart_hazards, make_restart_safe
from repro.mir import ProgramBuilder, mop, preg
from repro.regalloc import LinearScanAllocator


def incread_program(machine):
    builder = ProgramBuilder("incread", machine)
    builder.start_block("entry")
    builder.emit(mop("add", preg("T0"), preg("R1"), preg("ONE")))
    builder.emit(mop("mov", preg("R1"), preg("T0")))   # reg[n] := reg[n]+1
    builder.emit(mop("mov", preg("MAR"), preg("R1")))
    builder.emit(mop("read", preg("MBR"), preg("MAR")))  # may pagefault
    builder.exit(preg("MBR"))
    return builder.finish()


def execute(program, machine):
    composed = compose_program(program, machine, SequentialComposer())
    store = ControlStore(machine)
    store.load(assemble(composed, machine))

    def service(state, trap):
        address = int(trap.detail.split("address ")[1].rstrip(")"))
        print(f"  -> {trap}")
        state.memory.map_address(address)

    simulator = Simulator(machine, store, trap_service=service)
    simulator.state.memory.paging_enabled = True
    simulator.state.memory.load_words(101, [0xCAFE])
    simulator.state.write_reg("R1", 100)
    outcome = simulator.run("incread")
    return simulator.state.read_reg("R1"), outcome


def main() -> None:
    machine = get_machine("VAXm")

    print("Naive compilation (reg[n] starts at 100; M[101] = 0xcafe):")
    naive = incread_program(machine)
    for hazard in analyze_restart_hazards(naive, machine):
        print(f"  hazard: {hazard}")
    final, outcome = execute(naive, machine)
    print(f"  reg[n] after run: {final}   (BUG: incremented twice)")
    print(f"  value fetched:    {outcome.exit_value:#x}   (wrong address)")
    print()

    print("Restart-safe compilation (idempotence transform):")
    safe = incread_program(machine)
    remaining = make_restart_safe(safe, machine)
    assert not remaining
    LinearScanAllocator().allocate(safe, machine)
    final, outcome = execute(safe, machine)
    print(f"  reg[n] after run: {final}   (incremented exactly once)")
    print(f"  value fetched:    {outcome.exit_value:#x}")


if __name__ == "__main__":
    main()
