"""MPL: 32-bit arithmetic on a 16-bit machine (survey §2.2.5).

MPL — the earliest high level microprogramming language — let the
programmer declare "virtual registers consisting of the concatenation
of physical ones".  This example accumulates 32-bit values on the
vertical VM1 machine MPL historically targeted, and prints the carry-
chained microcode the compiler produces.

Run:  python examples/mpl_virtual_registers.py
"""

from repro import ControlStore, Simulator, compile_mpl, get_machine

SOURCE = """
program acc32;
virtual TOTAL = R1 : R2;
virtual STEP  = R3 : R4;
array SAVE[2];

begin
    comment ten 32-bit accumulations, carries crossing the halves;
    0 -> R5;
    while R5 # R6 do
    begin
        TOTAL + STEP -> TOTAL;
        R5 + ONE -> R5;
    end;
    comment spill the result to memory, half by half;
    R1 -> SAVE[0];
    R2 -> SAVE[1];
end
"""


def main() -> None:
    machine = get_machine("VM1")
    result = compile_mpl(SOURCE, machine)
    print(result.loaded.listing(machine))
    print()

    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    simulator.state.write_reg("R3", 0x0001)  # STEP = 0x1C000: every
    simulator.state.write_reg("R4", 0xC000)  # addition carries
    simulator.state.write_reg("R6", 10)
    outcome = simulator.run("acc32")

    total = (simulator.state.read_reg("R1") << 16) | simulator.state.read_reg("R2")
    print(f"run: {outcome}")
    print(f"TOTAL = {total:#010x} (expected {0x1C000 * 10:#010x})")
    saved = simulator.state.memory.dump_words(0x6800, 2)
    print(f"saved halves in memory: {[hex(v) for v in saved]}")
    assert total == 0x1C000 * 10


if __name__ == "__main__":
    main()
