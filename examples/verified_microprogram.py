"""Developing a verified S* microprogram (survey §2.2.3 / Strum).

Two S(HM1) programs with pre/postconditions: the parallel-assignment
swap (provable only because ``cobegin`` is simultaneous) and a
countdown loop with an invariant.  The bounded checker either
discharges every proof obligation or produces a counterexample — shown
here for a subtly wrong sequential "swap".

Run:  python examples/verified_microprogram.py
"""

from repro import ControlStore, Simulator, get_machine, compile_sstar, verify_sstar
from repro.lang.sstar import parse_sstar

SWAP = """
program swap;
pre  "x = a and y = b";
post "x = b and y = a";
var x : seq [15..0] bit bind R1;
var y : seq [15..0] bit bind R2;
begin
  cobegin x := y; y := x coend
end
"""

BROKEN_SWAP = """
program broken;
pre  "x = a and y = b";
post "x = b and y = a";
var x : seq [15..0] bit bind R1;
var y : seq [15..0] bit bind R2;
begin
  x := y;
  y := x
end
"""

COUNTDOWN = """
program countdown;
pre  "true";
post "i = 0";
var i : seq [15..0] bit bind R1;
begin
  while i <> 0 inv "true" do i := i - 1
end
"""


def main() -> None:
    machine = get_machine("HM1")

    for name, source in (("swap", SWAP), ("broken swap", BROKEN_SWAP),
                         ("countdown", COUNTDOWN)):
        report = verify_sstar(parse_sstar(source), machine)
        print(f"== {name} ==")
        print(report)
        print()

    # The verified swap also *runs* as a single microinstruction.
    result = compile_sstar(SWAP, machine)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    simulator.state.write_reg("R1", 1111)
    simulator.state.write_reg("R2", 2222)
    simulator.run("swap")
    print("executed swap:",
          f"R1 = {simulator.state.read_reg('R1')},",
          f"R2 = {simulator.state.read_reg('R2')},",
          f"in {result.loaded.words[0].instruction}")


if __name__ == "__main__":
    main()
