"""A tour of the five machine descriptions and the composition gap.

Prints each machine's control-word layout summary, then composes one
straight-line block with every algorithm on every machine — making the
survey's central tension visible: the same micro-operations pack into
very different numbers of words depending on the hardware's fields,
phases and units (§2.1.4).

Run:  python examples/machine_tour.py
"""

from repro import get_machine, machine_names
from repro.bench import render_table
from repro.compose import (
    BranchBoundComposer,
    LinearComposer,
    ListScheduler,
    SequentialComposer,
    data_parallelism,
)
from repro.mir import BasicBlock, Imm, Jump, mop, preg

COMPOSERS = [SequentialComposer(), LinearComposer(), ListScheduler(),
             BranchBoundComposer()]


def sample_block(machine):
    """Seven ops using moves, the ALU, the shifter and a literal."""
    allocatable = [r.name for r in machine.registers.allocatable()]
    a, b, c, d = allocatable[:4]
    block = BasicBlock("sample", ops=[
        mop("movi", preg(a), Imm(3)),
        mop("mov", preg(b), preg(a)),
        mop("shl", preg(c), preg(a), Imm(2)),
        mop("add", preg(d), preg(b), preg(c)),
        mop("mov", preg(a), preg(d)),
        mop("xor", preg(b), preg(d), preg(c)),
        mop("shr", preg(c), preg(b), Imm(1)),
    ])
    block.terminate(Jump("sample"))
    return block


def main() -> None:
    for name in machine_names():
        print(get_machine(name).summary())
    print()

    rows = []
    for name in machine_names():
        machine = get_machine(name)
        block = sample_block(machine)
        row = [name, machine.control.width]
        for composer in COMPOSERS:
            try:
                row.append(len(composer.compose_block(block, machine)))
            except Exception:
                row.append("-")
        row.append(f"{data_parallelism(block, machine):.2f}")
        rows.append(row)
    print(render_table(
        ["machine", "word bits", *(c.name for c in COMPOSERS),
         "data parallelism"],
        rows,
        title="Seven micro-operations composed on five machines",
    ))


if __name__ == "__main__":
    main()
