"""Microprogramming's original job: implementing a macroarchitecture.

Installs the microcoded M1 interpreter (written in YALLL, dispatching
through the multiway mask branch) on HM1, assembles a small M1 macro
program that sums the first N integers, and runs it — then compares
against the same computation as direct microcode, reproducing the
survey's §3 speedup argument in miniature.

Run:  python examples/macro_interpreter.py
"""

from repro import ControlStore, Simulator, compile_yalll, get_machine
from repro.bench import build_macro_system

N = 10

MACRO_SUM = f"""
; total = N + (N-1) + ... + 1, accumulator-machine style
start: LDA n
loop:  JZ  done
       LDA total
       ADD n
       STA total
       LDA n
       SUB one
       STA n
       JMP loop
done:  LDA total
       HALT
one:   .word 1
n:     .word {N}
total: .word 0
"""

MICRO_SUM = """
    put total,0
loop:
    jump out if n = 0
    add total,total,n
    sub n,n,1
    jump loop
out:
    exit total
"""


def main() -> None:
    machine = get_machine("HM1")

    system = build_macro_system(machine)
    print(f"interpreter: {len(system.interpreter.loaded)} control words "
          f"on {machine.name}")
    symbols = system.load_macro(MACRO_SUM, base=0x100)
    macro_outcome = system.run_macro(symbols["start"])
    print(f"macro:  sum(1..{N}) = {macro_outcome.exit_value} "
          f"in {macro_outcome.cycles} cycles (interpreted)")

    compiled = compile_yalll(MICRO_SUM, machine, name="microsum")
    store = ControlStore(machine)
    store.load(compiled.loaded)
    simulator = Simulator(machine, store)
    simulator.state.write_reg(compiled.allocation.mapping["n"], N)
    micro_outcome = simulator.run("microsum")
    print(f"micro:  sum(1..{N}) = {micro_outcome.exit_value} "
          f"in {micro_outcome.cycles} cycles (compiled microcode)")

    speedup = macro_outcome.cycles / micro_outcome.cycles
    print(f"speedup from moving the loop into microcode: {speedup:.1f}x")
    assert macro_outcome.exit_value == micro_outcome.exit_value == N * (N + 1) // 2


if __name__ == "__main__":
    main()
