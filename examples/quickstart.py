"""Quickstart: compile the survey's transliteration program and run it.

The survey's §2.2.4 YALLL example — transliterate a string through a
table — compiled for the HP300m machine description, loaded into the
control store and executed on the simulator.

Run:  python examples/quickstart.py
"""

from repro import ControlStore, Simulator, compile_yalll, get_machine

SOURCE = """
; transliterate the string at 'str' through the table at 'tbl'
reg str = db
reg tbl = sb
reg char = mbr

loop:
    load char,str
    jump out if char = 0
    add  mar,char,tbl
    load char,mar
    stor char,str
    add  str,str,1
    jump loop
out: exit
"""


def main() -> None:
    machine = get_machine("HP300m")
    print(machine.summary())
    print()

    result = compile_yalll(SOURCE, machine, name="translit")
    print(result.loaded.listing(machine))
    print()

    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)

    # A little string "abc" (1,2,3) and a table mapping v -> v + 10.
    simulator.state.memory.load_words(100, [1, 2, 3, 0])
    for value in range(16):
        simulator.state.memory.load_words(200 + value, [value + 10])
    simulator.state.write_reg("db", 100)
    simulator.state.write_reg("sb", 200)

    outcome = simulator.run("translit")
    print(f"run: {outcome}")
    print(f"string before: [1, 2, 3, 0]")
    print(f"string after:  {simulator.state.memory.dump_words(100, 4)}")


if __name__ == "__main__":
    main()
