"""Regenerate the survey's own evaluation artifact.

Prints the language × design-issue comparison matrix and the §3
conclusion counts — all derived from `repro.survey`'s data records,
then cross-checked against what this toolkit actually implements.

Run:  python examples/survey_report.py
"""

from repro.survey import (
    LANGUAGES,
    render_conclusions,
    render_matrix,
    survey_counts,
)


def main() -> None:
    print(render_matrix())
    print()
    print("Conclusions (survey section 3), regenerated from the records:")
    print(render_conclusions())
    print()

    counts = survey_counts()
    implemented = [r.name for r in LANGUAGES if r.in_toolkit]
    print(f"This toolkit implements {counts['implemented_in_toolkit']} of "
          f"the {counts['languages']} surveyed languages end to end: "
          f"{', '.join(implemented)}.")
    print("Each compiles through the shared substrate "
          "(machine descriptions -> micro-IR -> legalization -> "
          "allocation -> composition -> assembler -> simulator).")


if __name__ == "__main__":
    main()
